(** The Save-work invariant checker (paper §2.3).

    Save-work Theorem: a computation is guaranteed consistent recovery
    from stop failures iff for each executed non-deterministic event
    [e_p^i] that causally precedes a visible or commit event [e],
    process [p] executes a commit [e_p^j] such that [e_p^j]
    happens-before (or is atomic with) [e] and [i < j]. *)

type violation = {
  nd : Event.t;  (** the uncommitted non-deterministic event *)
  target : Event.t;  (** the visible or commit event it causally precedes *)
}

val pp_violation : Format.formatter -> violation -> unit

val visible_violations : Trace.t -> violation list
(** Violations of Save-work-visible: uncommitted ND events causally
    preceding a visible event (the visible constraint). *)

val orphan_violations : Trace.t -> violation list
(** Violations of Save-work-orphan: uncommitted ND events causally
    preceding another process's commit (the no-orphan constraint). *)

val violations : Trace.t -> violation list
(** Both kinds. *)

val holds : Trace.t -> bool
(** No violations: the Save-work invariant was upheld. *)

val orphans : Trace.t -> int list
(** Processes that committed a dependence on a crashed process's
    uncommitted ND event (Figure 2): they can block the computation from
    ever completing. *)
