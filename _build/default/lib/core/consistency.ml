(** Consistent recovery (paper §2.3).

    Recovery is consistent iff there exists a complete failure-free
    execution whose sequence of visible events is equivalent to the
    sequence actually output in the failed-and-recovered run.  Two
    sequences are equivalent when the only events in the observed sequence
    [v] that differ from the reference [v'] are {e repeats} of earlier
    events from [v] (duplicates are tolerated because exactly-once output
    is unattainable; users can overlook duplicated output). *)

type verdict =
  | Consistent
  | Extra of { position : int; value : int }
      (* observed a value that is neither expected next nor a repeat *)
  | Truncated of { missing : int }
      (* the observed run stopped short of a complete reference run *)

(* Greedy scan: each observed value either matches the next reference
   value, or is a repeat of an already-output value (duplicate after a
   rollback).  The whole reference must be consumed: consistent recovery
   is defined over complete executions (the no-orphan constraint). *)
let check ~reference ~observed =
  let seen = Hashtbl.create 64 in
  let rec go pos obs ref_ =
    match (obs, ref_) with
    | [], [] -> Consistent
    | [], r -> Truncated { missing = List.length r }
    | o :: obs', r :: ref' when o = r ->
        Hashtbl.replace seen o ();
        go (pos + 1) obs' ref'
    | o :: obs', _ when Hashtbl.mem seen o -> go (pos + 1) obs' ref_
    | o :: _, _ -> Extra { position = pos; value = o }
  in
  go 0 observed reference

let is_consistent ~reference ~observed =
  check ~reference ~observed = Consistent

let pp_verdict fmt = function
  | Consistent -> Format.pp_print_string fmt "consistent"
  | Extra { position; value } ->
      Format.fprintf fmt "inconsistent: value %d at position %d is neither \
                          expected nor a duplicate" value position
  | Truncated { missing } ->
      Format.fprintf fmt "incomplete: %d visible events missing" missing
