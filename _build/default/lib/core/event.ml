(** Events of the computation model (paper §2.2).

    A computation is one or more processes, each modeled as a state machine
    whose transitions are {e events}.  Event kinds follow the paper's
    taxonomy: deterministic internal transitions, non-deterministic events
    (split into {e transient} and {e fixed} classes, §2.5), user-visible
    output events, message sends and receives, commit events, and crash
    events (the terminal transition of a propagation failure). *)

type pid = int

type nd_class =
  | Transient  (** may have a different result when re-executed after a
                   failure: scheduling, signals, message order, timing *)
  | Fixed      (** has the same result before and after a failure: user
                   input values, disk-full or file-table-full conditions *)

type kind =
  | Internal                                (* deterministic state change *)
  | Nd of nd_class                          (* internal non-determinism *)
  | Visible of int                          (* output seen by the user *)
  | Send of { dest : pid; tag : int }       (* message send *)
  | Receive of { src : pid; tag : int }     (* message receive (ND) *)
  | Commit
  | Commit_round of int   (* one commit of an atomic coordinated round *)
  | Crash

type t = {
  pid : pid;
  index : int;       (* per-process sequence number, 0-based *)
  kind : kind;
  logged : bool;     (* true when the recovery system rendered this ND
                        event deterministic by logging its result *)
  vc : Vclock.t;     (* vector clock at (just after) this event *)
}

(* Receives are non-deterministic because message arrival order is not
   fixed; a logged event of any kind is deterministic by definition. *)
let is_nd e =
  (not e.logged)
  &&
  match e.kind with
  | Nd _ | Receive _ -> true
  | Internal | Visible _ | Send _ | Commit | Commit_round _ | Crash -> false

let nd_class e =
  match e.kind with
  | Nd c -> Some c
  | Receive _ -> Some Transient
  | Internal | Visible _ | Send _ | Commit | Commit_round _ | Crash -> None

let is_visible e = match e.kind with Visible _ -> true | _ -> false
let is_commit e =
  match e.kind with Commit | Commit_round _ -> true | _ -> false

(* The atomic round a commit belongs to, if it was coordinated. *)
let commit_round e =
  match e.kind with Commit_round r -> Some r | _ -> None

(* Two commits of the same coordinated round are atomic with each other
   (the 2PC atomicity the Save-work Theorem's "or atomic with" covers). *)
let atomic_with a b =
  match (commit_round a, commit_round b) with
  | Some ra, Some rb -> ra = rb
  | _ -> false
let is_send e = match e.kind with Send _ -> true | _ -> false
let is_receive e = match e.kind with Receive _ -> true | _ -> false
let is_crash e = match e.kind with Crash -> true | _ -> false

let is_transient_nd e =
  is_nd e && nd_class e = Some Transient

let kind_to_string = function
  | Internal -> "internal"
  | Nd Transient -> "nd-transient"
  | Nd Fixed -> "nd-fixed"
  | Visible v -> Printf.sprintf "visible(%d)" v
  | Send { dest; tag } -> Printf.sprintf "send(->%d #%d)" dest tag
  | Receive { src; tag } -> Printf.sprintf "recv(<-%d #%d)" src tag
  | Commit -> "commit"
  | Commit_round r -> Printf.sprintf "commit[round %d]" r
  | Crash -> "crash"

let to_string e =
  Printf.sprintf "p%d/%d:%s%s" e.pid e.index (kind_to_string e.kind)
    (if e.logged then "[logged]" else "")

let pp fmt e = Format.pp_print_string fmt (to_string e)

let equal a b = a.pid = b.pid && a.index = b.index
