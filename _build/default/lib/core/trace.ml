(** Recorded event traces.

    A trace accumulates the events executed by every process of a
    computation, maintaining vector clocks so that happens-before (and
    thus the causally-precedes approximation of §2.2) can be queried
    afterwards.  Message sends and receives are matched by [tag]. *)

type t = {
  nprocs : int;
  mutable events_rev : Event.t list;
  mutable count : int;
  clocks : Vclock.t array;                  (* live clock per process *)
  send_clocks : (int, Vclock.t) Hashtbl.t;  (* tag -> clock at send *)
}

let create ~nprocs =
  {
    nprocs;
    events_rev = [];
    count = 0;
    clocks = Array.init nprocs (fun _ -> Vclock.create nprocs);
    send_clocks = Hashtbl.create 64;
  }

let nprocs t = t.nprocs
let length t = t.count

let next_index t pid =
  (* Own component counts this process's events; index is 0-based. *)
  Vclock.get t.clocks.(pid) pid

let record t ~pid ?(logged = false) kind =
  if pid < 0 || pid >= t.nprocs then
    invalid_arg (Printf.sprintf "Trace.record: bad pid %d" pid);
  let index = next_index t pid in
  (match kind with
  | Event.Receive { tag; _ } -> (
      match Hashtbl.find_opt t.send_clocks tag with
      | Some sc -> Vclock.merge_into ~into:t.clocks.(pid) sc
      | None -> ())
  | _ -> ());
  Vclock.tick t.clocks.(pid) pid;
  let vc = Vclock.copy t.clocks.(pid) in
  (match kind with
  | Event.Send { tag; _ } -> Hashtbl.replace t.send_clocks tag vc
  | _ -> ());
  let e = { Event.pid; index; kind; logged; vc } in
  t.events_rev <- e :: t.events_rev;
  t.count <- t.count + 1;
  e

let events t = List.rev t.events_rev

let events_of t pid = List.filter (fun e -> e.Event.pid = pid) (events t)

(* e1 happens-before e2.  With per-event clock snapshots taken just after
   the tick, strict pointwise comparison is exactly Lamport's relation. *)
let happens_before (e1 : Event.t) (e2 : Event.t) = Vclock.lt e1.vc e2.vc

(* The paper uses happens-before as an approximation of causality; we keep
   a distinct name for readability at call sites. *)
let causally_precedes = happens_before

let find t ~pid ~index =
  List.find_opt (fun e -> e.Event.pid = pid && e.Event.index = index) (events t)

let commits_of t pid =
  List.filter Event.is_commit (events_of t pid)

let visible_values t =
  List.filter_map
    (fun e -> match e.Event.kind with Event.Visible v -> Some v | _ -> None)
    (events t)

let crashes t = List.filter Event.is_crash (events t)

(* The matching send of a receive event, if it was recorded. *)
let matching_send t (recv : Event.t) =
  match recv.kind with
  | Event.Receive { tag; _ } ->
      List.find_opt
        (fun e ->
          match e.Event.kind with
          | Event.Send { tag = tag'; _ } -> tag = tag'
          | _ -> false)
        (events t)
  | _ -> None

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "%a@." Event.pp e) (events t)
