(** Explicit process state machines for the dangerous-paths algorithm
    (paper §2.5, Figures 6 and 7). *)

(** Edge classification.  Receive edges carry no intrinsic ND class: the
    multi-process algorithm computes it from a snapshot of the other
    processes' commits. *)
type edge_kind =
  | Det
  | Transient_nd
  | Fixed_nd
  | Receive_nd of int  (** receive from the given sender *)

type edge = { id : int; src : int; dst : int; kind : edge_kind }

type t = private {
  nstates : int;
  edges : edge array;
  crash_states : bool array;  (** the states "filled black" in Figure 6 *)
  initial : int;
  out : int list array;
}

val make :
  nstates:int ->
  edges:(int * int * edge_kind) list ->
  crash_states:int list ->
  ?initial:int ->
  unit ->
  t
(** Build a graph; raises [Invalid_argument] on out-of-range endpoints. *)

val nedges : t -> int
val edge : t -> int -> edge
val out_edges : t -> int -> edge list
val is_crash_state : t -> int -> bool

val is_crash_edge : t -> edge -> bool
(** A crash event: an edge whose end state is a crash state. *)

val to_dot : ?dangerous:bool array -> t -> string
(** Graphviz rendering: crash states filled black, dangerous edges (as
    computed by {!Dangerous_paths.dangerous_edges}) drawn red — the
    visual language of the paper's Figures 6 and 7. *)

val paths_from : t -> src:int -> max_len:int -> int list list
(** All edge-id paths of bounded length, for brute-force cross-checks. *)
