lib/core/consistency.ml: Format Hashtbl List
