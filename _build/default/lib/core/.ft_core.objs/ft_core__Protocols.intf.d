lib/core/protocols.mli: Protocol
