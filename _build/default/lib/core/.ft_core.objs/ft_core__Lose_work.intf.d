lib/core/lose_work.mli: Event State_graph Trace
