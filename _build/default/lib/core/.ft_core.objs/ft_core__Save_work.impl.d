lib/core/save_work.ml: Event Format Lazy List Trace
