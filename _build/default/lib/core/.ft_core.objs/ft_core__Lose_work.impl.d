lib/core/lose_work.ml: Array Dangerous_paths Event List Trace
