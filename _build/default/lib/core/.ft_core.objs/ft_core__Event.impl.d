lib/core/event.ml: Format Printf Vclock
