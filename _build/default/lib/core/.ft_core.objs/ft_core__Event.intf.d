lib/core/event.mli: Format Vclock
