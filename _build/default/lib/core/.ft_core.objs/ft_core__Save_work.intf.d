lib/core/save_work.mli: Event Format Trace
