lib/core/dangerous_paths.ml: Array Event List State_graph Trace
