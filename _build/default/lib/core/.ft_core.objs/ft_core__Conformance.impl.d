lib/core/conformance.ml: Event List Protocol Save_work Trace
