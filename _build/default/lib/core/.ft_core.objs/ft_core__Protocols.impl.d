lib/core/protocols.ml: Array Event List Protocol String
