lib/core/protocol.ml: Event
