lib/core/protocol_space.ml: Array Buffer List Protocol Protocols String
