lib/core/trace.ml: Array Event Format Hashtbl List Printf Vclock
