lib/core/dangerous_paths.mli: Event State_graph Trace
