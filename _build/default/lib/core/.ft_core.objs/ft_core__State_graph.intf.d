lib/core/state_graph.mli:
