lib/core/state_graph.ml: Array Buffer List Printf
