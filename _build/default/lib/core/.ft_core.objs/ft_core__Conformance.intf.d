lib/core/conformance.mli: Protocol Save_work Trace
