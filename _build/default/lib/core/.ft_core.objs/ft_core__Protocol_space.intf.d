lib/core/protocol_space.mli: Protocol
