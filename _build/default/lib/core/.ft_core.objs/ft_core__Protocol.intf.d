lib/core/protocol.mli: Event
