(** Generic Save-work conformance checking: drive a protocol with an
    abstract multi-process event stream, materialize the commits and
    logs it dictates into a {!Trace}, and verify the Save-work invariant
    held.  Used by the property-test suite to prove every executable
    protocol correct over random streams. *)

type step = { pid : int; info : Protocol.event_info }

val step : pid:int -> Protocol.event_info -> step

val run : Protocol.spec -> nprocs:int -> step list -> Trace.t
(** Replay the script; a [Receive] with nothing pending is skipped, so
    arbitrary scripts are safe. *)

val upholds_save_work : Protocol.spec -> nprocs:int -> step list -> bool
val violations : Protocol.spec -> nprocs:int -> step list ->
  Save_work.violation list
