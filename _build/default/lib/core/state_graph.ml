(** Explicit process state machines (paper §2.2, Figures 6 and 7).

    The dangerous-paths algorithm of §2.5 is stated over a process's state
    machine with its crash events.  States are integers; each edge is an
    event with a kind.  Receive edges carry no intrinsic class: in the
    multi-process algorithm their class (transient vs fixed) is computed
    from a snapshot of the other processes' commits. *)

type edge_kind =
  | Det
  | Transient_nd
  | Fixed_nd
  | Receive_nd of int  (* receive from the given sender; class computed *)

type edge = { id : int; src : int; dst : int; kind : edge_kind }

type t = {
  nstates : int;
  edges : edge array;
  crash_states : bool array;  (* states "filled black" in Figure 6 *)
  initial : int;
  out : int list array;       (* out-edge ids per state *)
}

let make ~nstates ~edges ~crash_states ?(initial = 0) () =
  if nstates <= 0 then invalid_arg "State_graph.make: nstates";
  let arr =
    Array.of_list
      (List.mapi
         (fun id (src, dst, kind) ->
           if src < 0 || src >= nstates || dst < 0 || dst >= nstates then
             invalid_arg "State_graph.make: edge endpoint out of range";
           { id; src; dst; kind })
         edges)
  in
  let crash = Array.make nstates false in
  List.iter
    (fun s ->
      if s < 0 || s >= nstates then
        invalid_arg "State_graph.make: crash state out of range";
      crash.(s) <- true)
    crash_states;
  let out = Array.make nstates [] in
  Array.iter (fun e -> out.(e.src) <- e.id :: out.(e.src)) arr;
  Array.iteri (fun i l -> out.(i) <- List.rev l) out;
  { nstates; edges = arr; crash_states = crash; initial; out }

let nedges t = Array.length t.edges
let edge t id = t.edges.(id)
let out_edges t s = List.map (fun id -> t.edges.(id)) t.out.(s)
let is_crash_state t s = t.crash_states.(s)

(* A crash event is an edge whose end state is a crash state: executing it
   transitions into a state from which the process cannot continue. *)
let is_crash_edge t e = t.crash_states.(e.dst)

(* Graphviz export: dangerous edges drawn red, crash states filled
   black (the visual language of the paper's Figures 6 and 7). *)
let to_dot ?(dangerous = [||]) t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph dangerous_paths {\n  rankdir=LR;\n";
  for s = 0 to t.nstates - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  s%d [shape=circle%s];\n" s
         (if t.crash_states.(s) then
            " style=filled fillcolor=black fontcolor=white"
          else ""))
  done;
  Array.iter
    (fun e ->
      let label =
        match e.kind with
        | Det -> ""
        | Transient_nd -> "ND"
        | Fixed_nd -> "fixed ND"
        | Receive_nd src -> Printf.sprintf "recv(%d)" src
      in
      let red =
        e.id < Array.length dangerous && dangerous.(e.id)
      in
      Buffer.add_string buf
        (Printf.sprintf "  s%d -> s%d [label=\"%s\"%s];\n" e.src e.dst label
           (if red then " color=red penwidth=2" else "")))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Enumerate all paths (edge-id lists) from [src] of length at most
   [max_len]; used by tests to cross-check the coloring algorithm against
   a brute-force definition of dangerousness. *)
let paths_from t ~src ~max_len =
  let rec go s len =
    if len = 0 then [ [] ]
    else
      let tails =
        List.concat_map
          (fun e -> List.map (fun p -> e.id :: p) (go e.dst (len - 1)))
          (out_edges t s)
      in
      [] :: tails
  in
  go src max_len
