(** Consistent recovery (paper §2.3): the visible output of a failed and
    recovered run must be equivalent to that of some complete
    failure-free execution, where the only tolerated differences are
    repeats of earlier output (duplicates after a rollback). *)

type verdict =
  | Consistent
  | Extra of { position : int; value : int }
      (** a value that is neither the expected next output nor a repeat *)
  | Truncated of { missing : int }
      (** the observed run stopped short of a complete execution *)

val check : reference:int list -> observed:int list -> verdict

val is_consistent : reference:int list -> observed:int list -> bool

val pp_verdict : Format.formatter -> verdict -> unit
