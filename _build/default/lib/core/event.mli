(** Events of the computation model (paper §2.2).

    Processes are state machines; each transition is an event.  Event
    kinds follow the paper's taxonomy: deterministic internal
    transitions, non-deterministic events (transient or fixed, §2.5),
    user-visible output, message sends/receives, commits, and crash
    events. *)

type pid = int
(** Process identifier, [0 .. nprocs-1]. *)

(** Classes of non-determinism (§2.5). *)
type nd_class =
  | Transient
      (** May take a different result when re-executed after a failure:
          scheduling, signals, message order, timing. *)
  | Fixed
      (** Has the same result before and after a failure: user input
          values, disk-full and file-table-full conditions. *)

(** What a recorded event was. *)
type kind =
  | Internal  (** deterministic state change *)
  | Nd of nd_class  (** internal non-determinism *)
  | Visible of int  (** output seen by the user, with its value *)
  | Send of { dest : pid; tag : int }  (** message send *)
  | Receive of { src : pid; tag : int }  (** message receive (ND) *)
  | Commit  (** the process preserved its state *)
  | Commit_round of int
      (** a commit belonging to an atomic coordinated round (2PC): all
          commits with the same round id are atomic with each other *)
  | Crash  (** terminal transition of a failure *)

type t = {
  pid : pid;
  index : int;  (** per-process sequence number, 0-based *)
  kind : kind;
  logged : bool;
      (** [true] when the recovery system rendered this ND event
          deterministic by logging its result *)
  vc : Vclock.t;  (** vector clock just after the event *)
}

val is_nd : t -> bool
(** Is this event non-deterministic?  Receives are ND (message order);
    logged events are deterministic by definition. *)

val nd_class : t -> nd_class option
(** The event's ND class, regardless of logging; [None] for events that
    are never ND. *)

val is_visible : t -> bool

val is_commit : t -> bool
(** Both local commits and coordinated-round commits. *)

val commit_round : t -> int option

val atomic_with : t -> t -> bool
(** Two commits of the same coordinated round are atomic with each
    other — the Save-work Theorem's "(or atomic with)" case. *)

val is_send : t -> bool
val is_receive : t -> bool
val is_crash : t -> bool

val is_transient_nd : t -> bool
(** [is_nd e] and of class {!Transient}. *)

val kind_to_string : kind -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
(** Identity: same process and same index. *)
