lib/runtime/checkpointer.ml: Array Ft_os Ft_stablemem Ft_vm List
