lib/runtime/engine.ml: Array Checkpointer Event Ft_core Ft_os Ft_vm List Protocol Random
