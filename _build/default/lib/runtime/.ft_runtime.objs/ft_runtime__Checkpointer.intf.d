lib/runtime/checkpointer.mli: Ft_os Ft_stablemem Ft_vm
