lib/runtime/engine.mli: Checkpointer Ft_core Ft_os Ft_vm
