(** Discount Checking: transparent full-process checkpoints (paper §3).

    Each process's address space lives (logically) in a Vista segment
    backed by Rio reliable memory.  Vista traps updates copy-on-write and
    keeps before-images in a persistent undo log; taking a checkpoint
    amounts to copying the register file, atomically discarding the undo
    log, and resetting page protections.  We charge exactly those costs:
    a per-checkpoint base, a trap-plus-copy cost per page dirtied since
    the last checkpoint, and a per-word copy cost for the register file,
    live stack and kernel state.

    DC-disk is the same mechanism with the committed image written as a
    redo log synchronously to disk; its per-checkpoint cost is dominated
    by the disk access time ({!Ft_stablemem.Disk}). *)

type medium =
  | Reliable_memory            (* Rio: memory-speed commits *)
  | Disk of Ft_stablemem.Disk.t  (* DC-disk: synchronous redo log *)

type cost_model = {
  base_ns : int;        (* fixed per checkpoint: register copy, log reset *)
  page_trap_ns : int;   (* COW page-protection trap, per dirty page *)
  word_copy_ns : int;   (* memory copy, per word *)
  kstate_words : int;   (* accounted size of saved kernel state *)
}

let default_cost = {
  base_ns = 25_000;
  page_trap_ns = 4_000;
  word_copy_ns = 2;
  kstate_words = 64;
}

(* Per-process persistent area: committed heap image, committed stack,
   machine metadata, plus the kernel-state snapshot kept alongside. *)
type slot = {
  vista : Ft_stablemem.Vista.t;
  heap_words : int;
  stack_base : int;          (* offset of the stack area in the region *)
  meta_base : int;
  mutable committed_sp : int;
  mutable committed : bool;  (* at least one checkpoint taken *)
  mutable kstate : Ft_os.Kernel.kstate_snapshot option;
  mutable count : int;       (* checkpoints taken *)
}

type t = {
  medium : medium;
  cost : cost_model;
  slots : slot array;
  excluded : int -> bool;
      (* §2.6: pages of recomputable state the application chose not to
         checkpoint; their contents are lost at recovery *)
}

let meta_words = Ft_vm.Instr.num_regs + 6

let create ?(cost = default_cost) ?(excluded = fun _ -> false) ~medium
    ~nprocs ~heap_words ~stack_words () =
  let make_slot _ =
    let size = heap_words + stack_words + meta_words in
    let region = Ft_stablemem.Rio.create ~size in
    {
      vista = Ft_stablemem.Vista.create region;
      heap_words;
      stack_base = heap_words;
      meta_base = heap_words + stack_words;
      committed_sp = 0;
      committed = false;
      kstate = None;
      count = 0;
    }
  in
  { medium; cost; slots = Array.init nprocs make_slot; excluded }

let checkpoints t ~pid = t.slots.(pid).count

let has_checkpoint t ~pid = t.slots.(pid).committed

(* Take a checkpoint of [machine] (incremental in its dirty pages) and the
   kernel state; returns the simulated cost in nanoseconds. *)
let commit t ~pid ~(machine : Ft_vm.Machine.t) ~kstate =
  let s = t.slots.(pid) in
  let heap = Ft_vm.Machine.heap machine in
  let page_size = Ft_vm.Memory.page_size heap in
  let dirty =
    List.filter (fun p -> not (t.excluded p)) (Ft_vm.Memory.dirty_pages heap)
  in
  let snap = Ft_vm.Machine.snapshot machine in
  let v = s.vista in
  Ft_stablemem.Vista.begin_tx v;
  (* Heap: only pages dirtied since the last checkpoint. *)
  List.iter
    (fun p ->
      Ft_stablemem.Vista.write_range v ~off:(p * page_size)
        (Ft_vm.Memory.snapshot_page heap p))
    dirty;
  (* Live stack prefix and machine metadata. *)
  if Array.length snap.Ft_vm.Machine.s_stack > 0 then
    Ft_stablemem.Vista.write_range v ~off:s.stack_base
      snap.Ft_vm.Machine.s_stack;
  let meta =
    Array.append snap.Ft_vm.Machine.s_regs
      [|
        snap.Ft_vm.Machine.s_pc;
        snap.Ft_vm.Machine.s_sp;
        snap.Ft_vm.Machine.s_fp;
        snap.Ft_vm.Machine.s_icount;
        snap.Ft_vm.Machine.s_signal_handler;
        (if snap.Ft_vm.Machine.s_in_signal then 1 else 0);
      |]
  in
  Ft_stablemem.Vista.write_range v ~off:s.meta_base meta;
  Ft_stablemem.Vista.commit v;
  Ft_vm.Memory.clear_dirty heap;
  s.committed_sp <- snap.Ft_vm.Machine.s_sp;
  s.committed <- true;
  s.kstate <- Some kstate;
  s.count <- s.count + 1;
  let words =
    (List.length dirty * page_size)
    + snap.Ft_vm.Machine.s_sp + meta_words + t.cost.kstate_words
  in
  match t.medium with
  | Reliable_memory ->
      t.cost.base_ns
      + (List.length dirty * t.cost.page_trap_ns)
      + (words * t.cost.word_copy_ns)
  | Disk d ->
      (* COW traps still happen; the synchronous log write dominates. *)
      t.cost.base_ns
      + (List.length dirty * t.cost.page_trap_ns)
      + Ft_stablemem.Disk.commit_cost d ~words

(* Pessimistic logging of an ND event's result: the record must be stable
   before the event's effects can propagate, so on DC-disk each log write
   is a synchronous disk access (the reason the -LOG protocols still pay
   double-digit overheads on DC-disk in Figure 8). *)
let log_cost t ~words =
  match t.medium with
  | Reliable_memory -> 1_000 + (words * t.cost.word_copy_ns)
  | Disk d -> Ft_stablemem.Disk.write_cost d ~words

(* Restore [machine] (and return the kernel state) from the last
   checkpoint.  Returns the simulated recovery cost. *)
let restore t ~pid ~(machine : Ft_vm.Machine.t) =
  let s = t.slots.(pid) in
  if not s.committed then invalid_arg "Checkpointer.restore: no checkpoint";
  (* A crash mid-commit leaves an open transaction; Vista recovery rolls
     it back to the previous checkpoint. *)
  Ft_stablemem.Vista.recover s.vista;
  let region = Ft_stablemem.Vista.region s.vista in
  let heap = Ft_stablemem.Rio.sub region ~off:0 ~len:s.heap_words in
  let meta = Ft_stablemem.Rio.sub region ~off:s.meta_base ~len:meta_words in
  let nregs = Ft_vm.Instr.num_regs in
  let sp = meta.(nregs + 1) in
  let stack = Ft_stablemem.Rio.sub region ~off:s.stack_base ~len:sp in
  let snap =
    {
      Ft_vm.Machine.s_code_len = 0;
      s_pc = meta.(nregs);
      s_regs = Array.sub meta 0 nregs;
      s_stack = stack;
      s_sp = sp;
      s_fp = meta.(nregs + 2);
      s_heap = heap;
      s_icount = meta.(nregs + 3);
      s_signal_handler = meta.(nregs + 4);
      s_in_signal = meta.(nregs + 5) = 1;
    }
  in
  Ft_vm.Machine.restore machine snap;
  let kstate =
    match s.kstate with
    | Some k -> k
    | None -> invalid_arg "Checkpointer.restore: missing kernel state"
  in
  let words = s.heap_words + sp + meta_words + t.cost.kstate_words in
  let cost =
    match t.medium with
    | Reliable_memory -> t.cost.base_ns + (words * t.cost.word_copy_ns)
    | Disk d -> Ft_stablemem.Disk.write_cost d ~words
  in
  (kstate, cost)
