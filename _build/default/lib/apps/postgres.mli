(** postgres: a relational-database stand-in (paper §4) — a hash-table
    storage engine with chained nodes, a free-list allocator, a
    write-ahead log, and query results as visible output. *)

type params = {
  queries : int;
  keyspace : int;
  interval_ns : int;
  check_every : int;  (** consistency-check cadence, in queries *)
  seed : int;
}

val default_params : params
val small_params : params

val heap_words : int
val wal_file : int
val nbuckets : int

val program : ?check_every:int -> unit -> Ft_vm.Asm.program

val input_script : params -> int list
(** Query tokens: [op * 1_000_000 + key * 1_000 + value]; op 1 INSERT,
    2 SELECT, 3 UPDATE, 4 DELETE, 5 SCAN. *)

val workload : ?params:params -> unit -> Workload.t
