(** TreadMarks: a software distributed shared memory system running a
    Barnes-Hut N-body simulation (paper §3, Figure 8d).

    Four processes share an array of bodies through a page-based DSM with
    release consistency, implemented entirely in the mini-language:

    - pid 0 is the {e manager}: it holds the master copy of the shared
      space and serves page-fetch requests (it is also worker 0);
    - a read of an absent page sends a request and receives the page a
      word at a time (copious receive ND — in real TreadMarks these are
      SIGSEGV- and SIGIO-driven, which is why so much of the ND in
      Figure 8d cannot be logged);
    - writes are buffered locally at word granularity (the dirty-word
      diffs of TreadMarks) and shipped to the manager at each barrier;
    - the barrier applies all diffs to the master copy and invalidates
      every cached page, so each iteration reads exactly the previous
      barrier's state — making the computation deterministic regardless
      of message timing.

    The N-body force computation is selectable: O(N^2) direct summation
    (the Figure-8d default) or the real Barnes-Hut algorithm — a
    quadtree the manager builds into DSM shared memory each iteration
    (published by a build barrier) and every worker traverses with the
    theta opening criterion, faulting in tree pages as it descends.

    The per-interaction [gettimeofday] "profiling timer" supplies the
    transient unloggable ND that keeps CAND-LOG's commit count high, and
    the manager prints one progress line per iteration plus a final
    checksum — the tiny visible-event count that makes the 2PC protocols
    the big win for this application, exactly as in the paper. *)

open Ft_vm.Asm

(* The force computation: [Direct] is O(N^2) direct summation; [Tree] is
   the real Barnes-Hut algorithm — a quadtree built in DSM shared memory
   by the manager each iteration, traversed by every worker with the
   theta opening criterion. *)
type algorithm = Direct | Tree

type params = {
  bodies : int;
  iters : int;
  seed : int;
  algorithm : algorithm;
}

let default_params = { bodies = 32; iters = 10; seed = 17;
                       algorithm = Direct }
let small_params = { bodies = 12; iters = 3; seed = 17; algorithm = Direct }
let tree_params = { bodies = 32; iters = 6; seed = 17; algorithm = Tree }

let nprocs = 4
let body_words = 5 (* x, y, vx, vy, mass *)
let dsm_page = 16

(* Heap layout (same on every process; master area used by pid 0 only). *)
let h_arrived = 1
let h_pendn = 2
let h_sig = 3
let h_stats = 4
let h_talloc = 5        (* manager: quadtree bump allocator (tree mode) *)
let local_base = 64
let shared_cap = 4_096
let present_base = local_base + shared_cap
let dirtyw_base = present_base + 256
let pend_base = dirtyw_base + shared_cap
let tstack_base = pend_base + 2_048   (* private traversal stack (tree) *)
let master_base = 11_264
let heap_words = 16_384

(* Quadtree node layout (tree mode): kind (0 empty, 1 leaf, 2 internal),
   mass, mass-weighted x and y sums, region center x/y, region half-size,
   four child addresses. *)
let node_words = 11
let nd_kind = 0
let nd_mass = 1
let nd_wx = 2
let nd_wy = 3
let nd_cx = 4
let nd_cy = 5
let nd_half = 6
let nd_child = 7
let space = 4_096       (* tree mode: positions live in [0, space) *)

(* Message encoding: [kind * 2^40 + field * 2^28 + (value + 2^27)]. *)
let m_kind = 1 lsl 40
let m_field = 1 lsl 28
let m_bias = 1 lsl 27
let k_req = 1
let k_word = 2
let k_diff = 3
let k_arrive = 4
let k_release = 5

let enc_req page = Int (k_req * m_kind) +: page
let enc2 kind field value =
  Int (kind * m_kind) +: (field *: Int m_field) +: (value +: Int m_bias)
let dec_kind v = v /: Int m_kind
let dec_field v = (v %: Int m_kind) /: Int m_field
let dec_value v = (v %: Int m_field) -: Int m_bias

let program ~params:p ~pid =
  let n = p.bodies in
  let bodies_words = n * body_words in
  let tree = p.algorithm = Tree in
  let max_nodes = 6 * n in
  let t_root = bodies_words in          (* shared word: root node address *)
  let tree_base = bodies_words + 1 in
  let n_shared =
    if tree then tree_base + (max_nodes * node_words) else bodies_words
  in
  if n_shared > shared_cap then
    invalid_arg "Treadmarks.program: too many bodies for the shared area";
  let n_pages = (n_shared + dsm_page - 1) / dsm_page in
  let is_mgr = pid = 0 in
  let chunk = n / nprocs in
  let lo = pid * chunk and hi = if pid = nprocs - 1 then n else (pid + 1) * chunk in
  let local a = Int local_base +: a in
  let master a = Int master_base +: a in
  let present pg = Int present_base +: pg in
  let dirtyw a = Int dirtyw_base +: a in
  let fns = ref [] in
  let def f = fns := f :: !fns in

  def (func ~is_handler:true "on_signal" []
         [ Set_heap (Int h_sig, Deref (Int h_sig) +: Int 1) ]);

  (* Fetch a page into the local cache, skipping locally-dirty words
     (diff merging).  The manager copies from its master area; workers
     request the page from the manager and receive it word by word. *)
  def (func "fetch_page" [ "pg" ]
         [
           If
             ( Deref (present (Var "pg")) =: Int 0,
               (if is_mgr then
                  [
                    Let ("idx", Int 0);
                    While
                      ( Var "idx" <: Int dsm_page,
                        [
                          Let ("a", (Var "pg" *: Int dsm_page) +: Var "idx");
                          If (Deref (dirtyw (Var "a")) =: Int 0,
                              [ Set_heap (local (Var "a"),
                                          Deref (master (Var "a"))) ],
                              []);
                          Set ("idx", Var "idx" +: Int 1);
                        ] );
                    Set_heap (present (Var "pg"), Int 1);
                  ]
                else
                  [
                    Send_msg (Int 0, enc_req (Var "pg"));
                    Let ("j", Int 0);
                    Let ("v", Int 0);
                    Let ("src", Int 0);
                    While
                      ( Var "j" <: Int dsm_page,
                        [
                          Recv_msg ("v", "src");
                          Check (dec_kind (Var "v") =: Int k_word);
                          Let ("a", (Var "pg" *: Int dsm_page)
                                    +: dec_field (Var "v"));
                          If (Deref (dirtyw (Var "a")) =: Int 0,
                              [ Set_heap (local (Var "a"),
                                          dec_value (Var "v")) ],
                              []);
                          Set ("j", Var "j" +: Int 1);
                        ] );
                    Set_heap (present (Var "pg"), Int 1);
                  ]),
               [] );
         ]);

  def (func "dsm_read" [ "a" ]
         [
           Expr (Call ("fetch_page", [ Var "a" /: Int dsm_page ]));
           Return (Deref (local (Var "a")));
         ]);

  def (func "dsm_write" [ "a"; "v" ]
         [
           Set_heap (local (Var "a"), Var "v");
           Set_heap (dirtyw (Var "a"), Int 1);
         ]);

  if is_mgr then begin
    (* Serve one page to a worker, a word per message. *)
    def (func "serve_page" [ "pg"; "dst" ]
           [
             Let ("idx", Int 0);
             While
               ( Var "idx" <: Int dsm_page,
                 [
                   Let ("a", (Var "pg" *: Int dsm_page) +: Var "idx");
                   Send_msg (Var "dst",
                             enc2 k_word (Var "idx") (Deref (master (Var "a"))));
                   Set ("idx", Var "idx" +: Int 1);
                 ] );
           ]);
    (* Drain pending requests/diffs/arrivals without blocking; diffs are
       buffered and applied only at the barrier so every iteration reads
       exactly the previous barrier's state. *)
    def (func "poll" []
           [
             Let ("v", Int 0);
             Let ("src", Int 0);
             Let ("go", Int 1);
             While
               ( Var "go",
                 [
                   Try_recv_msg ("v", "src");
                   If
                     ( Var "v" <: Int 0,
                       [ Set ("go", Int 0) ],
                       [
                         Let ("kind", dec_kind (Var "v"));
                         If (Var "kind" =: Int k_req,
                             [ Expr (Call ("serve_page",
                                           [ Var "v" %: Int m_kind;
                                             Var "src" ])) ],
                             []);
                         If (Var "kind" =: Int k_diff,
                             [
                               Let ("pn", Deref (Int h_pendn));
                               Check (Var "pn" <: Int 2048);
                               Set_heap (Int pend_base +: Var "pn", Var "v");
                               Set_heap (Int h_pendn, Var "pn" +: Int 1);
                             ],
                             []);
                         If (Var "kind" =: Int k_arrive,
                             [ Set_heap (Int h_arrived,
                                         Deref (Int h_arrived) +: Int 1) ],
                             []);
                       ] );
                 ] );
           ]);
    def (func "apply_diff" [ "v" ]
           [
             Set_heap (master (dec_field (Var "v")), dec_value (Var "v"))
           ])
  end;

  (* Barrier.  Workers ship dirty-word diffs and wait for the release;
     the manager folds its own dirty words and everyone's diffs into the
     master copy, then releases.  All processes invalidate their cache. *)
  def (func "barrier" []
         ((if is_mgr then
             [
               (* own dirty words straight into the master *)
               Let ("a", Int 0);
               While
                 ( Var "a" <: Int n_shared,
                   [
                     If (Deref (dirtyw (Var "a")) <>: Int 0,
                         [ Set_heap (master (Var "a"),
                                     Deref (local (Var "a")));
                           Set_heap (dirtyw (Var "a"), Int 0) ],
                         []);
                     Set ("a", Var "a" +: Int 1);
                   ] );
               (* diffs buffered by poll *)
               Let ("i", Int 0);
               While
                 ( Var "i" <: Deref (Int h_pendn),
                   [
                     Expr (Call ("apply_diff",
                                 [ Deref (Int pend_base +: Var "i") ]));
                     Set ("i", Var "i" +: Int 1);
                   ] );
               Set_heap (Int h_pendn, Int 0);
               (* wait for the stragglers, serving requests meanwhile *)
               Let ("v", Int 0);
               Let ("src", Int 0);
               While
                 ( Deref (Int h_arrived) <: Int (nprocs - 1),
                   [
                     Recv_msg ("v", "src");
                     Let ("kind", dec_kind (Var "v"));
                     If (Var "kind" =: Int k_req,
                         [ Expr (Call ("serve_page",
                                       [ Var "v" %: Int m_kind; Var "src" ])) ],
                         []);
                     If (Var "kind" =: Int k_diff,
                         [ Expr (Call ("apply_diff", [ Var "v" ])) ], []);
                     If (Var "kind" =: Int k_arrive,
                         [ Set_heap (Int h_arrived,
                                     Deref (Int h_arrived) +: Int 1) ],
                         []);
                   ] );
               Set_heap (Int h_arrived, Int 0);
               Send_msg (Int 1, Int (k_release * m_kind));
               Send_msg (Int 2, Int (k_release * m_kind));
               Send_msg (Int 3, Int (k_release * m_kind));
             ]
           else
             [
               Let ("a", Int 0);
               While
                 ( Var "a" <: Int n_shared,
                   [
                     If (Deref (dirtyw (Var "a")) <>: Int 0,
                         [
                           Send_msg (Int 0,
                                     enc2 k_diff (Var "a")
                                       (Deref (local (Var "a"))));
                           Set_heap (dirtyw (Var "a"), Int 0);
                         ],
                         []);
                     Set ("a", Var "a" +: Int 1);
                   ] );
               Send_msg (Int 0, Int (k_arrive * m_kind));
               Let ("v", Int 0);
               Let ("src", Int 0);
               Recv_msg ("v", "src");
               Check (dec_kind (Var "v") =: Int k_release);
             ])
          @ [
              (* release consistency: invalidate every cached page *)
              Let ("pg", Int 0);
              While
                ( Var "pg" <: Int n_pages,
                  [
                    Set_heap (present (Var "pg"), Int 0);
                    Set ("pg", Var "pg" +: Int 1);
                  ] );
            ]));

  if tree then begin
    if is_mgr then begin
      (* Allocate and initialize a fresh quadtree node in shared memory.
         The bump cursor is private to the manager; nodes become visible
         to the workers at the build barrier. *)
      def (func "tree_alloc" [ "kind"; "m"; "wx"; "wy"; "cx"; "cy"; "half" ]
             [
               Let ("a", Deref (Int h_talloc));
               Check (Var "a" +: Int node_words
                      <=: Int (tree_base + (max_nodes * node_words)));
               Set_heap (Int h_talloc, Var "a" +: Int node_words);
               Expr (Call ("dsm_write", [ Var "a" +: Int nd_kind; Var "kind" ]));
               Expr (Call ("dsm_write", [ Var "a" +: Int nd_mass; Var "m" ]));
               Expr (Call ("dsm_write", [ Var "a" +: Int nd_wx; Var "wx" ]));
               Expr (Call ("dsm_write", [ Var "a" +: Int nd_wy; Var "wy" ]));
               Expr (Call ("dsm_write", [ Var "a" +: Int nd_cx; Var "cx" ]));
               Expr (Call ("dsm_write", [ Var "a" +: Int nd_cy; Var "cy" ]));
               Expr (Call ("dsm_write", [ Var "a" +: Int nd_half; Var "half" ]));
               Let ("q", Int 0);
               While
                 ( Var "q" <: Int 4,
                   [
                     Expr (Call ("dsm_write",
                                 [ Var "a" +: Int nd_child +: Var "q"; Int 0 ]));
                     Set ("q", Var "q" +: Int 1);
                   ] );
               Return (Var "a");
             ]);
      (* Insert body [b] by descending from the root, splitting leaves
         and accumulating mass-weighted sums on the way down; nearly
         coincident bodies merge once the region shrinks to a point. *)
      def (func "tree_insert" [ "b" ]
             [
               Let ("base", Var "b" *: Int body_words);
               Let ("x", Call ("dsm_read", [ Var "base" ]));
               Let ("y", Call ("dsm_read", [ Var "base" +: Int 1 ]));
               Let ("m", Call ("dsm_read", [ Var "base" +: Int 4 ]));
               Let ("node", Call ("dsm_read", [ Int t_root ]));
               Let ("going", Int 1);
               Let ("steps", Int 0);
               While
                 ( Var "going",
                   [
                     Check (Var "steps" <: Int 64);
                     Set ("steps", Var "steps" +: Int 1);
                     Let ("kind", Call ("dsm_read", [ Var "node" +: Int nd_kind ]));
                     Let ("half", Call ("dsm_read", [ Var "node" +: Int nd_half ]));
                     If
                       ( Var "kind" =: Int 0,
                         [
                           (* empty (fresh root): become a leaf *)
                           Expr (Call ("dsm_write",
                                       [ Var "node" +: Int nd_kind; Int 1 ]));
                           Expr (Call ("dsm_write",
                                       [ Var "node" +: Int nd_mass; Var "m" ]));
                           Expr (Call ("dsm_write",
                                       [ Var "node" +: Int nd_wx;
                                         Var "m" *: Var "x" ]));
                           Expr (Call ("dsm_write",
                                       [ Var "node" +: Int nd_wy;
                                         Var "m" *: Var "y" ]));
                           Set ("going", Int 0);
                         ],
                         [
                           If
                             ( (Var "kind" =: Int 1) &&: (Var "half" <: Int 4),
                               [
                                 (* coincident clamp: merge into the leaf *)
                                 Expr (Call ("tree_bump",
                                             [ Var "node"; Var "m";
                                               Var "x"; Var "y" ]));
                                 Set ("going", Int 0);
                               ],
                               [
                                 If
                                   ( Var "kind" =: Int 1,
                                     [ Expr (Call ("tree_split", [ Var "node" ])) ],
                                     []);
                                 (* now internal: accumulate and descend *)
                                 If
                                   ( Var "going",
                                     [
                                       Expr (Call ("tree_bump",
                                                   [ Var "node"; Var "m";
                                                     Var "x"; Var "y" ]));
                                       Let ("q", Call ("tree_quadrant",
                                                       [ Var "node"; Var "x";
                                                         Var "y" ]));
                                       Let ("c", Call ("dsm_read",
                                                       [ Var "node" +: Int nd_child
                                                         +: Var "q" ]));
                                       If
                                         ( Var "c" =: Int 0,
                                           [
                                             Let ("leaf",
                                                  Call ("tree_child_leaf",
                                                        [ Var "node"; Var "q";
                                                          Var "m"; Var "x";
                                                          Var "y" ]));
                                             Expr (Call ("dsm_write",
                                                         [ Var "node" +: Int nd_child
                                                           +: Var "q";
                                                           Var "leaf" ]));
                                             Set ("going", Int 0);
                                           ],
                                           [ Set ("node", Var "c") ] );
                                     ],
                                     []);
                               ] );
                         ] );
                   ] );
             ]);
      (* Add (m, x, y) into a node's aggregates. *)
      def (func "tree_bump" [ "node"; "m"; "x"; "y" ]
             [
               Expr (Call ("dsm_write",
                           [ Var "node" +: Int nd_mass;
                             Call ("dsm_read", [ Var "node" +: Int nd_mass ])
                             +: Var "m" ]));
               Expr (Call ("dsm_write",
                           [ Var "node" +: Int nd_wx;
                             Call ("dsm_read", [ Var "node" +: Int nd_wx ])
                             +: (Var "m" *: Var "x") ]));
               Expr (Call ("dsm_write",
                           [ Var "node" +: Int nd_wy;
                             Call ("dsm_read", [ Var "node" +: Int nd_wy ])
                             +: (Var "m" *: Var "y") ]));
             ]);
      (* Quadrant of (x, y) relative to the node's region center:
         bit 0 = east, bit 1 = north. *)
      def (func "tree_quadrant" [ "node"; "x"; "y" ]
             [
               Let ("cx", Call ("dsm_read", [ Var "node" +: Int nd_cx ]));
               Let ("cy", Call ("dsm_read", [ Var "node" +: Int nd_cy ]));
               Let ("q", Int 0);
               If (Var "x" >=: Var "cx", [ Set ("q", Var "q" +: Int 1) ], []);
               If (Var "y" >=: Var "cy", [ Set ("q", Var "q" +: Int 2) ], []);
               Return (Var "q");
             ]);
      (* Allocate a leaf for quadrant [q] of [node]. *)
      def (func "tree_child_leaf" [ "node"; "q"; "m"; "x"; "y" ]
             [
               Let ("cx", Call ("dsm_read", [ Var "node" +: Int nd_cx ]));
               Let ("cy", Call ("dsm_read", [ Var "node" +: Int nd_cy ]));
               Let ("h2", Call ("dsm_read", [ Var "node" +: Int nd_half ])
                          /: Int 2);
               Let ("ncx", Var "cx" -: Var "h2");
               Let ("ncy", Var "cy" -: Var "h2");
               If ((Var "q" %: Int 2) =: Int 1,
                   [ Set ("ncx", Var "cx" +: Var "h2") ], []);
               If (Var "q" >=: Int 2,
                   [ Set ("ncy", Var "cy" +: Var "h2") ], []);
               Return
                 (Call ("tree_alloc",
                        [ Int 1; Var "m"; Var "m" *: Var "x";
                          Var "m" *: Var "y"; Var "ncx"; Var "ncy";
                          Var "h2" ]));
             ]);
      (* Turn a leaf into an internal node, pushing its occupant down
         one level.  The node keeps its aggregates. *)
      def (func "tree_split" [ "node" ]
             [
               Let ("m", Call ("dsm_read", [ Var "node" +: Int nd_mass ]));
               Let ("wx", Call ("dsm_read", [ Var "node" +: Int nd_wx ]));
               Let ("wy", Call ("dsm_read", [ Var "node" +: Int nd_wy ]));
               Let ("ox", Var "wx" /: Var "m");
               Let ("oy", Var "wy" /: Var "m");
               Expr (Call ("dsm_write", [ Var "node" +: Int nd_kind; Int 2 ]));
               Let ("q", Call ("tree_quadrant",
                               [ Var "node"; Var "ox"; Var "oy" ]));
               Let ("leaf", Call ("tree_child_leaf",
                                  [ Var "node"; Var "q"; Var "m";
                                    Var "ox"; Var "oy" ]));
               (* the pushed-down leaf carries the exact aggregates *)
               Expr (Call ("dsm_write", [ Var "leaf" +: Int nd_mass; Var "m" ]));
               Expr (Call ("dsm_write", [ Var "leaf" +: Int nd_wx; Var "wx" ]));
               Expr (Call ("dsm_write", [ Var "leaf" +: Int nd_wy; Var "wy" ]));
               Expr (Call ("dsm_write",
                           [ Var "node" +: Int nd_child +: Var "q";
                             Var "leaf" ]));
             ]);
      (* Build the whole tree for this iteration. *)
      def (func "tree_build" []
             [
               Set_heap (Int h_talloc, Int tree_base);
               Let ("root",
                    Call ("tree_alloc",
                          [ Int 0; Int 0; Int 0; Int 0;
                            Int (space / 2); Int (space / 2);
                            Int (space / 2) ]));
               Expr (Call ("dsm_write", [ Int t_root; Var "root" ]));
               Let ("b", Int 0);
               While
                 ( Var "b" <: Int n,
                   [
                     Expr (Call ("tree_insert", [ Var "b" ]));
                     Expr (Call ("poll", []));
                     Set ("b", Var "b" +: Int 1);
                   ] );
             ])
    end;
    (* Barnes-Hut force computation: traverse the shared quadtree with
       an explicit stack and the theta opening criterion (theta = 0.5:
       open a cell unless d^2 > 16 * half^2). *)
    def (func "compute_body_tree" [ "b" ]
           [
             Let ("base", Var "b" *: Int body_words);
             Let ("x", Call ("dsm_read", [ Var "base" ]));
             Let ("y", Call ("dsm_read", [ Var "base" +: Int 1 ]));
             Let ("ax", Int 0);
             Let ("ay", Int 0);
             Let ("sp", Int 1);
             Set_heap (Int tstack_base, Call ("dsm_read", [ Int t_root ]));
             While
               ( Var "sp" >: Int 0,
                 [
                   Set ("sp", Var "sp" -: Int 1);
                   Let ("node", Deref (Int tstack_base +: Var "sp"));
                   Let ("kind", Call ("dsm_read", [ Var "node" +: Int nd_kind ]));
                   If
                     ( Var "kind" <>: Int 0,
                       [
                         Let ("m", Call ("dsm_read",
                                         [ Var "node" +: Int nd_mass ]));
                         Let ("cmx", Call ("dsm_read",
                                           [ Var "node" +: Int nd_wx ])
                                     /: Var "m");
                         Let ("cmy", Call ("dsm_read",
                                           [ Var "node" +: Int nd_wy ])
                                     /: Var "m");
                         Let ("dx", Var "cmx" -: Var "x");
                         Let ("dy", Var "cmy" -: Var "y");
                         Let ("d2", (Var "dx" *: Var "dx")
                                    +: (Var "dy" *: Var "dy") +: Int 25);
                         Let ("half", Call ("dsm_read",
                                            [ Var "node" +: Int nd_half ]));
                         If
                           ( (Var "kind" =: Int 1)
                             ||: (Var "d2" >: Int 16 *: Var "half" *: Var "half"),
                             [
                               (* far enough (or a leaf): point mass.
                                  skip the cell containing b itself *)
                               If
                                 ( Var "d2" >: Int 27,
                                   [
                                     Let ("f", (Var "m" *: Int 1000) /: Var "d2");
                                     Set ("ax", Var "ax"
                                                +: ((Var "f" *: Var "dx")
                                                    /: Int 100));
                                     Set ("ay", Var "ay"
                                                +: ((Var "f" *: Var "dy")
                                                    /: Int 100));
                                     Set_heap (Int h_stats,
                                               (Deref (Int h_stats)
                                                +: (Time %: Int 1000))
                                               %: Int 1_000_003);
                                   ],
                                   [] );
                             ],
                             [
                               (* open the cell: push the children *)
                               Let ("q", Int 0);
                               While
                                 ( Var "q" <: Int 4,
                                   [
                                     Let ("c", Call ("dsm_read",
                                                     [ Var "node" +: Int nd_child
                                                       +: Var "q" ]));
                                     If
                                       ( Var "c" <>: Int 0,
                                         [
                                           Check (Var "sp" <: Int 250);
                                           Set_heap (Int tstack_base +: Var "sp",
                                                     Var "c");
                                           Set ("sp", Var "sp" +: Int 1);
                                         ],
                                         [] );
                                     Set ("q", Var "q" +: Int 1);
                                   ] );
                             ] );
                       ],
                       [] );
                 ] );
             (* velocity and position update, wrapped to the region *)
             Let ("vx", Call ("dsm_read", [ Var "base" +: Int 2 ]) +: Var "ax");
             Let ("vy", Call ("dsm_read", [ Var "base" +: Int 3 ]) +: Var "ay");
             Set ("vx", Var "vx" %: Int 200);
             Set ("vy", Var "vy" %: Int 200);
             Expr (Call ("dsm_write", [ Var "base" +: Int 2; Var "vx" ]));
             Expr (Call ("dsm_write", [ Var "base" +: Int 3; Var "vy" ]));
             Expr (Call ("dsm_write",
                         [ Var "base";
                           (Var "x" +: Var "vx" +: Int (space * 10))
                           %: Int space ]));
             Expr (Call ("dsm_write",
                         [ Var "base" +: Int 1;
                           (Var "y" +: Var "vy" +: Int (space * 10))
                           %: Int space ]));
           ])
  end;

  (* One body's force computation and update (direct-sum gravity in
     fixed point).  The per-interaction timer read is the transient,
     unloggable ND of the profiled original. *)
  def (func "compute_body" [ "b" ]
         [
           Let ("base", Var "b" *: Int body_words);
           Let ("x", Call ("dsm_read", [ Var "base" ]));
           Let ("y", Call ("dsm_read", [ Var "base" +: Int 1 ]));
           Let ("ax", Int 0);
           Let ("ay", Int 0);
           Let ("o", Int 0);
           While
             ( Var "o" <: Int n,
               [
                 If
                   ( Var "o" <>: Var "b",
                     [
                       Let ("ob", Var "o" *: Int body_words);
                       Let ("ox", Call ("dsm_read", [ Var "ob" ]));
                       Let ("oy", Call ("dsm_read", [ Var "ob" +: Int 1 ]));
                       Let ("om", Call ("dsm_read", [ Var "ob" +: Int 4 ]));
                       Let ("dx", Var "ox" -: Var "x");
                       Let ("dy", Var "oy" -: Var "y");
                       Let ("d2",
                            (Var "dx" *: Var "dx") +: (Var "dy" *: Var "dy")
                            +: Int 100);
                       Let ("f", (Var "om" *: Int 1000) /: Var "d2");
                       Set ("ax", Var "ax" +: ((Var "f" *: Var "dx") /: Int 100));
                       Set ("ay", Var "ay" +: ((Var "f" *: Var "dy") /: Int 100));
                       (* profiling timer *)
                       Set_heap (Int h_stats,
                                 (Deref (Int h_stats) +: (Time %: Int 1000))
                                 %: Int 1_000_003);
                     ],
                     [] );
                 Set ("o", Var "o" +: Int 1);
               ] );
           Let ("vx", Call ("dsm_read", [ Var "base" +: Int 2 ]) +: Var "ax");
           Let ("vy", Call ("dsm_read", [ Var "base" +: Int 3 ]) +: Var "ay");
           Set ("vx", Var "vx" %: Int 1000);
           Set ("vy", Var "vy" %: Int 1000);
           Expr (Call ("dsm_write", [ Var "base" +: Int 2; Var "vx" ]));
           Expr (Call ("dsm_write", [ Var "base" +: Int 3; Var "vy" ]));
           Expr (Call ("dsm_write",
                       [ Var "base";
                         ((Var "x" +: Var "vx" +: Int 1_000_000)
                          %: Int 100_000) ]));
           Expr (Call ("dsm_write",
                       [ Var "base" +: Int 1;
                         ((Var "y" +: Var "vy" +: Int 1_000_000)
                          %: Int 100_000) ]));
         ]);

  if is_mgr then
    def (func "master_checksum" []
           [
             Let ("sum", Int 0);
             Let ("a", Int 0);
             While
               ( Var "a" <: Int bodies_words,
                 [
                   Set ("sum",
                        ((Var "sum" *: Int 31) +: Deref (master (Var "a")))
                        %: Int 1_000_003);
                   Set ("a", Var "a" +: Int 1);
                 ] );
             Return (Var "sum");
           ]);

  def (func "main" []
         ([ Sigaction "on_signal" ]
          @ (if is_mgr then
               [
                 (* deterministic initial conditions, straight into the
                    master copy *)
                 Let ("b", Int 0);
                 While
                   ( Var "b" <: Int n,
                     [
                       Let ("base", Var "b" *: Int body_words);
                       Set_heap (master (Var "base"),
                                 (Var "b" *: Int 937)
                                 %: Int (if tree then space else 100_000));
                       Set_heap (master (Var "base" +: Int 1),
                                 (Var "b" *: Int 1389)
                                 %: Int (if tree then space else 100_000));
                       Set_heap (master (Var "base" +: Int 2), Int 0);
                       Set_heap (master (Var "base" +: Int 3), Int 0);
                       Set_heap (master (Var "base" +: Int 4),
                                 (if tree then
                                    Int 1 +: ((Var "b" *: Int 53) %: Int 99)
                                  else
                                    Int 100
                                    +: ((Var "b" *: Int 53) %: Int 900)));
                       Set ("b", Var "b" +: Int 1);
                     ] );
               ]
             else [])
          @ [
              Let ("it", Int 0);
              While
                ( Var "it" <: Int p.iters,
                  (if tree then
                     (* build phase: the manager grows the quadtree in
                        shared memory; the barrier publishes it *)
                     (if is_mgr then [ Expr (Call ("tree_build", [])) ]
                      else [])
                     @ [ Expr (Call ("barrier", [])) ]
                   else [])
                  @ [
                    Let ("b", Int lo);
                    While
                      ( Var "b" <: Int hi,
                        ([ Expr
                             (Call
                                ((if tree then "compute_body_tree"
                                  else "compute_body"),
                                 [ Var "b" ])) ]
                         @ (if is_mgr then [ Expr (Call ("poll", [])) ]
                            else [])
                         @ [ Set ("b", Var "b" +: Int 1) ]) );
                    Expr (Call ("barrier", []));
                    Set ("it", Var "it" +: Int 1);
                  ]
                  @
                  if is_mgr then
                    [ Output ((Var "it" *: Int 10_000)
                              +: (Call ("master_checksum", []) %: Int 9973)) ]
                  else [] );
            ]
          @
          if is_mgr then [ Output (Call ("master_checksum", [])) ] else []))

  ;
  Ft_vm.Asm.program (List.rev !fns)

let workload ?(params = default_params) () =
  let programs =
    Array.init nprocs (fun pid -> Ft_vm.Asm.compile (program ~params ~pid))
  in
  Workload.make ~name:"treadmarks" ~nprocs ~programs ~heap_words
    ~configure:(fun k ->
      for pid = 0 to nprocs - 1 do
        Ft_os.Kernel.set_timer_signal k pid ~period_ns:40_000_000
          ~first_at:(20_000_000 + (pid * 5_000_000))
      done)
    ()
