(** The workload descriptor consumed by the experiment harness, plus
    seeded input-script helpers. *)

type t = {
  name : string;
  nprocs : int;
  programs : Ft_vm.Instr.t array array;  (** compiled code, per process *)
  configure : Ft_os.Kernel.t -> unit;  (** input scripts, timer signals *)
  heap_words : int;
  stack_words : int;
  deadline_ns : int option;
  horizon_hint : int;  (** expected dynamic instructions; 0 = unknown *)
}

val make :
  ?stack_words:int ->
  ?deadline_ns:int option ->
  ?horizon_hint:int ->
  name:string ->
  nprocs:int ->
  programs:Ft_vm.Instr.t array array ->
  configure:(Ft_os.Kernel.t -> unit) ->
  heap_words:int ->
  unit ->
  t

val weighted : Random.State.t -> (int * 'a) list -> 'a
(** Weighted choice from [(weight, value)] pairs. *)

val engine_config : t -> Ft_runtime.Engine.config -> Ft_runtime.Engine.config
(** Apply the workload's sizing (heap, stack, deadline) to a config. *)

val kernel : ?seed:int -> ?costs:Ft_os.Kernel.costs -> t -> Ft_os.Kernel.t
(** A kernel sized and configured for this workload. *)
