(** magic: a VLSI CAD layout tool (paper §3, Figure 8b).  One command a
    second edits or inspects a cell grid, re-renders a large layout view
    (the dominant dirty state per checkpoint), brackets the work with
    [gettimeofday] (unloggable ND) and prints a status line. *)

type params = {
  commands : int;
  interval_ns : int;
  signal_period_ns : int;
  seed : int;
}

val default_params : params
val small_params : params

val heap_words : int
val grid_w : int
val grid_h : int

val fb_base : int
(** Start of the re-rendered layout view: fully rebuilt every command,
    so it can be excluded from checkpoints (§2.6). *)

val fb_words : int

val program : Ft_vm.Asm.program

val input_script : params -> int list
(** Command tokens: [op * 100_000 + x * 100 + y]; op 1 PLACE, 2 ROUTE,
    3 ERASE, 4 QUERY, 5 DRC. *)

val workload : ?params:params -> unit -> Workload.t
