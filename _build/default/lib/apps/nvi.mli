(** nvi: a pointer-rich visual text editor (paper §3, §4).  Keystrokes
    are fixed ND input; each keystroke redraws the status line (visible);
    [:w] writes a summary of the buffer to a file; a rare timer signal
    supplies the unloggable ND of Figure 8a. *)

type params = {
  keystrokes : int;
  interval_ns : int;  (** think time between keystrokes *)
  signal_period_ns : int;
  check_every : int;
      (** consistency-check cadence in keystrokes; 1 = the paranoid
          crash-early mode of §2.6 *)
  seed : int;
}

val default_params : params
(** The paper's cadence: 100 ms between keystrokes. *)

val small_params : params
(** A fast non-interactive session for tests and fault campaigns (the
    paper's crash tests also used a fast nvi). *)

val heap_words : int
val wal_file : int  (** file name id used by [:w] *)

val program : ?check_every:int -> unit -> Ft_vm.Asm.program
val input_script : params -> int list
val workload : ?params:params -> unit -> Workload.t
