(** Common workload plumbing: the app descriptor consumed by the
    experiment harness, and seeded input-script generators. *)

type t = {
  name : string;
  nprocs : int;
  programs : Ft_vm.Instr.t array array;
  configure : Ft_os.Kernel.t -> unit;  (* input scripts, timers *)
  heap_words : int;
  stack_words : int;
  deadline_ns : int option;
  (* Expected dynamic instructions of a fault-free run; used to place
     bit-flip faults uniformly in time.  Measured once by the harness
     and cached by callers; 0 means unknown. *)
  horizon_hint : int;
}

let make ?(stack_words = 4_096) ?(deadline_ns = None) ?(horizon_hint = 0)
    ~name ~nprocs ~programs ~configure ~heap_words () =
  { name; nprocs; programs; configure; heap_words; stack_words;
    deadline_ns; horizon_hint }

(* Weighted choice: [(weight, value); ...] with a seeded RNG. *)
let weighted rng choices =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 choices in
  let roll = Random.State.int rng total in
  let rec go acc = function
    | [] -> invalid_arg "Workload.weighted: empty"
    | [ (_, v) ] -> v
    | (w, v) :: rest -> if roll < acc + w then v else go (acc + w) rest
  in
  go 0 choices

let engine_config t (base : Ft_runtime.Engine.config) =
  {
    base with
    Ft_runtime.Engine.heap_words = t.heap_words;
    stack_words = t.stack_words;
    deadline_ns = t.deadline_ns;
  }

let kernel ?(seed = 42) ?(costs = Ft_os.Kernel.default_costs) t =
  let k = Ft_os.Kernel.create ~costs ~seed ~nprocs:t.nprocs () in
  t.configure k;
  k
