lib/apps/postgres.ml: Ft_os Ft_vm List Random Workload
