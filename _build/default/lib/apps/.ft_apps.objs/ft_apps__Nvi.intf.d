lib/apps/nvi.mli: Ft_vm Workload
