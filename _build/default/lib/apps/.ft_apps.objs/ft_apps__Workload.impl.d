lib/apps/workload.ml: Ft_os Ft_runtime Ft_vm List Random
