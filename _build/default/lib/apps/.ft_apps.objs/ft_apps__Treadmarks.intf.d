lib/apps/treadmarks.mli: Ft_vm Workload
