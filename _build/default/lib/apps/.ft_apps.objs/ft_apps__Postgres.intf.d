lib/apps/postgres.mli: Ft_vm Workload
