lib/apps/xpilot.mli: Ft_runtime Ft_vm Workload
