lib/apps/xpilot.ml: Array Ft_runtime Ft_vm Workload
