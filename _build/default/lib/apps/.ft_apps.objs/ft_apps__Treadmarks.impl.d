lib/apps/treadmarks.ml: Array Ft_os Ft_vm List Workload
