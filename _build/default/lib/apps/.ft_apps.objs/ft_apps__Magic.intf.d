lib/apps/magic.mli: Ft_vm Workload
