lib/apps/workload.mli: Ft_os Ft_runtime Ft_vm Random
