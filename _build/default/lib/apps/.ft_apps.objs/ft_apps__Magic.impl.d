lib/apps/magic.ml: Ft_os Ft_vm List Random Workload
