lib/apps/nvi.ml: Ft_os Ft_vm List Random Workload
