(** xpilot: a distributed, real-time multi-player game (paper §3,
    Figure 8c).

    One server (pid 0) and three clients (pids 1-3) in lock-step frames
    targeting 15 frames per second.  Each frame: every client sends its
    control input (a transient ND "joystick" read) to the server and
    blocks for the new world state; the server collects the three inputs
    (message-order ND), advances the physics of its entities — reading
    the frame clock per entity, the copious transient unloggable ND that
    keeps CAND and CAND-LOG commit rates high in Figure 8c — and
    broadcasts the state; each client renders a frame (visible) and
    sleeps out the rest of its 66.7 ms frame budget.

    The harness reports sustainable frame rate (visible events per
    simulated second): commit latency eats into the frame budget, which
    is how DC-disk drops below 15 fps exactly as in the paper. *)

open Ft_vm.Asm

let nprocs = 4
let entities = 10
let h_frame = 0
let h_score = 1
let ent_base = 16    (* per entity: x, y, vx, vy *)
let heap_words = 8_192
let frame_us = 66_667

type params = { frames : int; seed : int }

let default_params = { frames = 300; seed = 31 }
let small_params = { frames = 40; seed = 31 }

let ent_field e f = Int ent_base +: ((e *: Int 4) +: Int f)

let server_program p =
  Ft_vm.Asm.program
    [
      (* Advance one entity using the frame clock as its physics jitter
         source (ND that cannot be logged away). *)
      func "advance" [ "e"; "steer" ]
        [
          Let ("t", Time);
          Let ("x", Deref (ent_field (Var "e") 0));
          Let ("y", Deref (ent_field (Var "e") 1));
          Let ("vx", Deref (ent_field (Var "e") 2));
          Let ("vy", Deref (ent_field (Var "e") 3));
          Set ("vx",
               ((Var "vx" +: (Var "steer" %: Int 5)) -: Int 2) %: Int 50);
          Set ("vy", (Var "vy" +: (Var "t" %: Int 3)) %: Int 50);
          Set ("x", (Var "x" +: Var "vx" +: Int 10_000) %: Int 1_000);
          Set ("y", (Var "y" +: Var "vy" +: Int 10_000) %: Int 1_000);
          Set_heap (ent_field (Var "e") 0, Var "x");
          Set_heap (ent_field (Var "e") 1, Var "y");
          Set_heap (ent_field (Var "e") 2, Var "vx");
          Set_heap (ent_field (Var "e") 3, Var "vy");
          (* the per-entity timer is read again at the end of the step *)
          Set_heap (Int h_score,
                    (Deref (Int h_score) +: (Time -: Var "t")) %: Int 65_536);
        ];
      func "world_hash" []
        [
          Let ("sum", Int 0);
          Let ("i", Int 0);
          While
            ( Var "i" <: Int (entities * 4),
              [
                Set ("sum",
                     ((Var "sum" *: Int 13) +: Deref (Int ent_base +: Var "i"))
                     %: Int 100_000);
                Set ("i", Var "i" +: Int 1);
              ] );
          Return (Var "sum");
        ];
      func "main" []
        [
          Let ("f", Int 0);
          Let ("v", Int 0);
          Let ("src", Int 0);
          Let ("steer", Int 0);
          While
            ( Var "f" <: Int p.frames,
              [
                (* collect the three client inputs, in arrival order *)
                Set ("steer", Int 0);
                Let ("i", Int 0);
                While
                  ( Var "i" <: Int 3,
                    [
                      Recv_msg ("v", "src");
                      Set ("steer", Var "steer" +: Var "v");
                      Set ("i", Var "i" +: Int 1);
                    ] );
                (* physics *)
                Let ("e", Int 0);
                While
                  ( Var "e" <: Int entities,
                    [
                      Expr (Call ("advance", [ Var "e"; Var "steer" ]));
                      Set ("e", Var "e" +: Int 1);
                    ] );
                (* broadcast world state *)
                Let ("h", Call ("world_hash", []));
                Send_msg (Int 1, Var "h");
                Send_msg (Int 2, Var "h");
                Send_msg (Int 3, Var "h");
                Set ("f", Var "f" +: Int 1);
                Set_heap (Int h_frame, Var "f");
              ] );
        ];
    ]

let client_program p =
  Ft_vm.Asm.program
    [
      func "main" []
        [
          Let ("f", Int 0);
          Let ("state", Int 0);
          Let ("src", Int 0);
          Let ("t", Int 0);
          Let ("target", Int 0);
          While
            ( Var "f" <: Int p.frames,
              [
                (* joystick sample: transient ND *)
                Send_msg (Int 0, Rand %: Int 10);
                Recv_msg ("state", "src");
                (* render the frame *)
                Output ((Var "f" *: Int 100_000) +: Var "state");
                (* sleep out the frame budget *)
                Set ("t", Time);
                Set ("target", (Var "f" +: Int 1) *: Int frame_us);
                If (Var "t" <: Var "target",
                    [ Sleep (Var "target" -: Var "t") ], []);
                Set ("f", Var "f" +: Int 1);
              ] );
        ];
    ]

let workload ?(params = default_params) () =
  let server = Ft_vm.Asm.compile (server_program params) in
  let client = Ft_vm.Asm.compile (client_program params) in
  Workload.make ~name:"xpilot" ~nprocs
    ~programs:[| server; client; client; client |]
    ~heap_words ~configure:(fun _ -> ())
    ()

(* Sustainable frame rate of a run: rendered frames per simulated second,
   taken from the most heavily loaded client. *)
let fps (r : Ft_runtime.Engine.result) =
  let secs = float_of_int r.Ft_runtime.Engine.sim_time_ns /. 1e9 in
  if secs <= 0. then 0.
  else
    let frames =
      Array.fold_left min max_int
        (Array.sub r.Ft_runtime.Engine.visible_counts 1 3)
    in
    float_of_int frames /. secs
