(** nvi: a visual text editor (paper §3, §4).

    A real line editor for the simulated machine: a bounded array of
    lines, each a bounded character buffer, with a cursor.  Every
    keystroke is a fixed ND event (user input); every keystroke redraws
    the status line (a visible event); [:w] walks the buffer and writes a
    summary of every line to a file (fixed ND events).  A rare timer
    signal models nvi's asynchronous redraw/resize handling — the handful
    of unloggable ND events that dominate CAND-LOG's commit count in
    Figure 8a.

    The editor performs the paper's §2.6 "crash soon" consistency checks
    after every command: cursor within the buffer, line count within
    range, line lengths within capacity.  Injected faults that corrupt
    editor state therefore crash it instead of letting it emit wrong
    output. *)

open Ft_vm.Asm

(* Heap layout.  Like the real editor, the buffer is pointer-rich: a
   table of pointers to per-line character buffers allocated from a bump
   arena.  Corrupting a pointer (a heap bit flip, or a faulty kernel
   copyout) lies dormant until the cursor visits that line — the long
   fault-to-crash latency that makes heap corruption so hostile to
   Lose-work in Table 1. *)
let h_nlines = 0
let h_curl = 1     (* cursor line *)
let h_curc = 2     (* cursor column *)
let h_sig = 3      (* redraw-signal counter *)
let h_saves = 4
let h_ops = 5
let h_alloc = 6    (* bump allocator cursor for line buffers *)
let lines_max = 200
let line_cap = 48
let ptr_base = 16                      (* line -> buffer address *)
let len_base = ptr_base + lines_max    (* line -> length *)
let arena_base = len_base + lines_max
let heap_words = 16_384
let wal_file = 7   (* the file name id used by :w *)

type params = {
  keystrokes : int;
  interval_ns : int;     (* think time between keystrokes: 100 ms *)
  signal_period_ns : int;
  check_every : int;     (* consistency-check cadence, in keystrokes;
                            1 = the paranoid crash-early mode of §2.6 *)
  seed : int;
}

let default_params =
  { keystrokes = 1_500;
    interval_ns = 100_000_000;
    signal_period_ns = 40_000_000_000;
    check_every = 1_000_000;
    seed = 7 }

(* Fast params for unit tests and fault-injection campaigns. *)
let small_params =
  { keystrokes = 220;
    interval_ns = 100_000;   (* the fast non-interactive nvi of the paper's
                                crash tests: ~10x postgres's syscall rate *)
    signal_period_ns = 5_000_000;
    check_every = 1_000_000;
    seed = 7 }

let line_ptr i = Int ptr_base +: i
let line_addr i = Deref (line_ptr i)
let line_len i = Deref (Int len_base +: i)
let set_line_len i v = Set_heap (Int len_base +: i, v)

let program ?(check_every = 24) () =
  let fns =
    [
      (* Timer signal: count a redraw request. *)
      func ~is_handler:true "on_signal" []
        [ Set_heap (Int h_sig, Deref (Int h_sig) +: Int 1) ];
      (* Allocate a fresh line buffer from the arena. *)
      func "alloc_line" []
        [
          Let ("a", Deref (Int h_alloc));
          Check (Var "a" >=: Int arena_base);
          Check (Var "a" <=: Int (heap_words - line_cap));
          Set_heap (Int h_alloc, Var "a" +: Int line_cap);
          Return (Var "a");
        ];
      (* Checksum of line [i], used by the status line and by :w. *)
      func "line_checksum" [ "i" ]
        [
          Let ("a", line_addr (Var "i"));
          Let ("n", line_len (Var "i"));
          Let ("j", Int 0);
          Let ("sum", Int 0);
          While
            ( Var "j" <: Var "n",
              [
                Set ("sum",
                     ((Var "sum" *: Int 31) +: Deref (Var "a" +: Var "j"))
                     %: Int 1_000_003);
                Set ("j", Var "j" +: Int 1);
              ] );
          Return (Var "sum");
        ];
      (* Insert character [c] at the cursor, shifting the tail right. *)
      func "insert_char" [ "c" ]
        [
          Let ("l", Deref (Int h_curl));
          Let ("n", line_len (Var "l"));
          If
            ( Var "n" <: Int (line_cap - 1),
              [
                Let ("a", line_addr (Var "l"));
                Let ("j", Var "n");
                Let ("col", Deref (Int h_curc));
                While
                  ( Var "j" >: Var "col",
                    [
                      Set_heap (Var "a" +: Var "j",
                                Deref ((Var "a" +: Var "j") -: Int 1));
                      Set ("j", Var "j" -: Int 1);
                    ] );
                Set_heap (Var "a" +: Var "col", Var "c");
                set_line_len (Var "l") (Var "n" +: Int 1);
                Set_heap (Int h_curc, Var "col" +: Int 1);
              ],
              [] );
        ];
      (* Delete the character under the cursor. *)
      func "delete_char" []
        [
          Let ("l", Deref (Int h_curl));
          Let ("n", line_len (Var "l"));
          Let ("col", Deref (Int h_curc));
          If
            ( Var "col" <: Var "n",
              [
                Let ("a", line_addr (Var "l"));
                Let ("j", Var "col");
                While
                  ( Var "j" <: Var "n" -: Int 1,
                    [
                      Set_heap (Var "a" +: Var "j",
                                Deref ((Var "a" +: Var "j") +: Int 1));
                      Set ("j", Var "j" +: Int 1);
                    ] );
                set_line_len (Var "l") (Var "n" -: Int 1);
              ],
              [] );
        ];
      (* Cursor movement, clamped to the buffer. *)
      func "move" [ "dir" ]
        [
          Let ("l", Deref (Int h_curl));
          Let ("c", Deref (Int h_curc));
          If (Var "dir" =: Int 1,
              [ If (Var "c" >: Int 0,
                    [ Set_heap (Int h_curc, Var "c" -: Int 1) ], []) ], []);
          If (Var "dir" =: Int 2,
              [ If (Var "c" <: line_len (Var "l"),
                    [ Set_heap (Int h_curc, Var "c" +: Int 1) ], []) ], []);
          If (Var "dir" =: Int 3,
              [ If (Var "l" >: Int 0,
                    [ Set_heap (Int h_curl, Var "l" -: Int 1) ], []) ], []);
          If (Var "dir" =: Int 4,
              [ If (Var "l" <: Deref (Int h_nlines) -: Int 1,
                    [ Set_heap (Int h_curl, Var "l" +: Int 1) ], []) ], []);
          (* Re-clamp the column to the (possibly shorter) new line. *)
          Let ("n", line_len (Deref (Int h_curl)));
          If (Deref (Int h_curc) >: Var "n",
              [ Set_heap (Int h_curc, Var "n") ], []);
        ];
      (* Open a new empty line below the cursor: shift the pointer table
         down and hand the new slot a fresh buffer. *)
      func "new_line" []
        [
          Let ("nl", Deref (Int h_nlines));
          If
            ( Var "nl" <: Int lines_max,
              [
                Let ("l", Deref (Int h_curl));
                Let ("i", Var "nl");
                While
                  ( Var "i" >: Var "l" +: Int 1,
                    [
                      Set_heap (line_ptr (Var "i"),
                                Deref (line_ptr (Var "i" -: Int 1)));
                      set_line_len (Var "i") (line_len (Var "i" -: Int 1));
                      Set ("i", Var "i" -: Int 1);
                    ] );
                Set_heap (line_ptr (Var "l" +: Int 1),
                          Call ("alloc_line", []));
                set_line_len (Var "l" +: Int 1) (Int 0);
                Set_heap (Int h_nlines, Var "nl" +: Int 1);
                Set_heap (Int h_curl, Var "l" +: Int 1);
                Set_heap (Int h_curc, Int 0);
              ],
              [] );
        ];
      (* Delete the current line: shift the pointer table up (the freed
         buffer leaks from the bump arena, as cheap editors do). *)
      func "delete_line" []
        [
          Let ("nl", Deref (Int h_nlines));
          If
            ( Var "nl" >: Int 1,
              [
                Let ("l", Deref (Int h_curl));
                Let ("i", Var "l");
                While
                  ( Var "i" <: Var "nl" -: Int 1,
                    [
                      Set_heap (line_ptr (Var "i"),
                                Deref (line_ptr (Var "i" +: Int 1)));
                      set_line_len (Var "i") (line_len (Var "i" +: Int 1));
                      Set ("i", Var "i" +: Int 1);
                    ] );
                Set_heap (Int h_nlines, Var "nl" -: Int 1);
                If (Deref (Int h_curl) >=: Deref (Int h_nlines),
                    [ Set_heap (Int h_curl, Deref (Int h_nlines) -: Int 1) ],
                    []);
                Set_heap (Int h_curc, Int 0);
              ],
              [] );
        ];
      (* :w — write line count then (length, checksum) per line. *)
      func "save_file" []
        [
          Let ("fd", Open_file (Int wal_file));
          If
            ( Var "fd" >=: Int 0,
              [
                Expr (Write_file (Var "fd", Deref (Int h_nlines)));
                Let ("i", Int 0);
                While
                  ( Var "i" <: Deref (Int h_nlines),
                    [
                      Expr (Write_file (Var "fd", line_len (Var "i")));
                      Expr (Write_file (Var "fd",
                                        Call ("line_checksum", [ Var "i" ])));
                      Set ("i", Var "i" +: Int 1);
                    ] );
                Close_file (Var "fd");
                Set_heap (Int h_saves, Deref (Int h_saves) +: Int 1);
              ],
              [] );
        ];
      (* §2.6 crash-early integrity pass: walk every line's pointer and
         length, the expensive whole-structure check whose cadence the
         crash-early ablation varies. *)
      func "full_sanity" []
        [
          Let ("i", Int 0);
          While
            ( Var "i" <: Deref (Int h_nlines),
              [
                Check (Deref (line_ptr (Var "i")) >=: Int arena_base);
                Check (Deref (line_ptr (Var "i"))
                       <=: Int (heap_words - line_cap));
                Check (line_len (Var "i") >=: Int 0);
                Check (line_len (Var "i") <: Int line_cap);
                Set ("i", Var "i" +: Int 1);
              ] );
        ];
      (* §2.6 consistency checks: fail fast on corrupted editor state. *)
      func "sanity" []
        [
          Check (Deref (Int h_nlines) >: Int 0);
          Check (Deref (Int h_nlines) <=: Int lines_max);
          Check (Deref (Int h_curl) >=: Int 0);
          Check (Deref (Int h_curl) <: Deref (Int h_nlines));
          Check (Deref (Int h_curc) >=: Int 0);
          Check (Deref (Int h_curc) <=: line_len (Deref (Int h_curl)));
          Check (line_len (Deref (Int h_curl)) <: Int line_cap);
          Check (line_addr (Deref (Int h_curl)) >=: Int arena_base);
          Check (line_addr (Deref (Int h_curl))
                 <=: Int (heap_words - line_cap));
        ];
      (* The status line the user watches: deterministic in the input. *)
      func "screen_hash" []
        [
          Return
            ((Deref (Int h_curl) *: Int 1_000_000)
             +: (Deref (Int h_curc) *: Int 10_000)
             +: (Deref (Int h_nlines) *: Int 100)
             +: (Call ("line_checksum", [ Deref (Int h_curl) ]) %: Int 97));
        ];
      func "main" []
        [
          Sigaction "on_signal";
          Set_heap (Int h_alloc, Int arena_base);
          Set_heap (Int h_nlines, Int 1);
          Set_heap (line_ptr (Int 0), Call ("alloc_line", []));
          set_line_len (Int 0) (Int 0);
          Let ("c", Int 0);
          Let ("quit", Int 0);
          While
            ( Not (Var "quit"),
              [
                Set ("c", Input);
                If
                  ( Var "c" <: Int 0,
                    [ Set ("quit", Int 1) ],
                    [
                      Set_heap (Int h_ops, Deref (Int h_ops) +: Int 1);
                      If (Var "c" >=: Int 1000,
                          [ Expr (Call ("insert_char",
                                        [ Var "c" -: Int 1000 ])) ],
                          []);
                      If ((Var "c" >=: Int 1) &&: (Var "c" <=: Int 4),
                          [ Expr (Call ("move", [ Var "c" ])) ], []);
                      If (Var "c" =: Int 5,
                          [ Expr (Call ("delete_char", [])) ], []);
                      If (Var "c" =: Int 6,
                          [ Expr (Call ("new_line", [])) ], []);
                      If (Var "c" =: Int 7,
                          [ Expr (Call ("delete_line", [])) ], []);
                      If (Var "c" =: Int 8,
                          [ Expr (Call ("save_file", [])) ], []);
                      Expr (Call ("sanity", []));
                      If ((Deref (Int h_ops) %: Int check_every) =: Int 0,
                          [ Expr (Call ("full_sanity", [])) ], []);
                      Output (Call ("screen_hash", []));
                    ] );
              ] );
          Output (Int 424242);  (* the final "goodbye" screen *)
        ];
    ]
  in
  Ft_vm.Asm.program fns

(* Seeded keystroke stream: mostly insertions, some navigation, rare
   structural edits and saves — an editing session. *)
let input_script p =
  let rng = Random.State.make [| p.seed |] in
  List.init p.keystrokes (fun _ ->
      Workload.weighted rng
        [
          (62, 1000 + 32 + Random.State.int rng 94);  (* insert a char *)
          (8, 2);   (* right *)
          (6, 1);   (* left *)
          (5, 4);   (* down *)
          (4, 3);   (* up *)
          (6, 5);   (* delete char *)
          (5, 6);   (* open line *)
          (2, 7);   (* delete line *)
          (2, 8);   (* :w *)
        ])

let workload ?(params = default_params) () =
  let code =
    Ft_vm.Asm.compile (program ~check_every:params.check_every ())
  in
  Workload.make ~name:"nvi" ~nprocs:1 ~programs:[| code |]
    ~heap_words
    ~configure:(fun k ->
      Ft_os.Kernel.set_input k 0
        (Ft_os.Kernel.scripted_input ~start:0 ~interval_ns:params.interval_ns
           (input_script params));
      Ft_os.Kernel.set_timer_signal k 0 ~period_ns:params.signal_period_ns
        ~first_at:(params.signal_period_ns / 2))
    ()
