(** magic: a VLSI CAD layout tool (paper §3, Figure 8b).

    The user issues a command about once per second; each command edits or
    inspects a cell grid, touching a large region of the heap (so magic's
    checkpoints carry more dirty pages than nvi's), brackets its work
    with [gettimeofday] calls for its command timer (transient, unloggable
    ND — the reason CAND-LOG still commits hundreds of times in
    Figure 8b), and prints one status line (visible).

    Command tokens: [op * 100_000 + x * 100 + y] with
    op 1 = PLACE an 8x8 cell block at (x, y), 2 = ROUTE a wire from
    (x, y) going right, 3 = ERASE an 8x8 region, 4 = QUERY region
    statistics, 5 = DRC check (walk the whole grid). *)

open Ft_vm.Asm

let grid_w = 96
let grid_h = 96
let h_ncmds = 0
let h_timer = 1     (* accumulated command microseconds *)
let h_placed = 2
let h_sig = 3
let grid_base = 16
let fb_base = 16_384   (* the rendered layout view *)
let fb_words = 24_576
let heap_words = 49_152
let block = 8

type params = {
  commands : int;
  interval_ns : int;
  signal_period_ns : int;
  seed : int;
}

let default_params =
  { commands = 190;
    interval_ns = 1_000_000_000;
    signal_period_ns = 4_000_000_000;
    seed = 23 }

let small_params =
  { commands = 40;
    interval_ns = 10_000_000;
    signal_period_ns = 50_000_000;
    seed = 23 }

let cell x y = Int grid_base +: ((y *: Int grid_w) +: x)

let program =
  let fns =
    [
      func ~is_handler:true "on_signal" []
        [ Set_heap (Int h_sig, Deref (Int h_sig) +: Int 1) ];
      func "clamp" [ "v"; "hi" ]
        [
          If (Var "v" <: Int 0, [ Return (Int 0) ], []);
          If (Var "v" >=: Var "hi", [ Return (Var "hi" -: Int 1) ], []);
          Return (Var "v");
        ];
      (* PLACE: stamp an 8x8 block of cell ids. *)
      func "place" [ "x"; "y"; "id" ]
        [
          Let ("i", Int 0);
          While
            ( Var "i" <: Int block,
              [
                Let ("j", Int 0);
                While
                  ( Var "j" <: Int block,
                    [
                      Let ("cx", Call ("clamp",
                                       [ Var "x" +: Var "j"; Int grid_w ]));
                      Let ("cy", Call ("clamp",
                                       [ Var "y" +: Var "i"; Int grid_h ]));
                      Set_heap (cell (Var "cx") (Var "cy"), Var "id");
                      Set ("j", Var "j" +: Int 1);
                    ] );
                Set ("i", Var "i" +: Int 1);
              ] );
          Set_heap (Int h_placed, Deref (Int h_placed) +: Int 1);
        ];
      (* ROUTE: draw a horizontal wire until it hits occupied cells. *)
      func "route" [ "x"; "y" ]
        [
          Let ("cx", Call ("clamp", [ Var "x"; Int grid_w ]));
          Let ("cy", Call ("clamp", [ Var "y"; Int grid_h ]));
          Let ("steps", Int 0);
          While
            ( (Var "cx" <: Int grid_w) &&: (Var "steps" <: Int grid_w),
              [
                Set_heap (cell (Var "cx") (Var "cy"), Int 9999);
                Set ("cx", Var "cx" +: Int 1);
                Set ("steps", Var "steps" +: Int 1);
              ] );
        ];
      func "erase" [ "x"; "y" ]
        [
          Let ("i", Int 0);
          While
            ( Var "i" <: Int block,
              [
                Let ("j", Int 0);
                While
                  ( Var "j" <: Int block,
                    [
                      Let ("cx", Call ("clamp",
                                       [ Var "x" +: Var "j"; Int grid_w ]));
                      Let ("cy", Call ("clamp",
                                       [ Var "y" +: Var "i"; Int grid_h ]));
                      Set_heap (cell (Var "cx") (Var "cy"), Int 0);
                      Set ("j", Var "j" +: Int 1);
                    ] );
                Set ("i", Var "i" +: Int 1);
              ] );
        ];
      (* QUERY: count and checksum a 16x16 region. *)
      func "query" [ "x"; "y" ]
        [
          Let ("sum", Int 0);
          Let ("i", Int 0);
          While
            ( Var "i" <: Int 16,
              [
                Let ("j", Int 0);
                While
                  ( Var "j" <: Int 16,
                    [
                      Let ("cx", Call ("clamp",
                                       [ Var "x" +: Var "j"; Int grid_w ]));
                      Let ("cy", Call ("clamp",
                                       [ Var "y" +: Var "i"; Int grid_h ]));
                      Set ("sum",
                           ((Var "sum" *: Int 7)
                            +: Deref (cell (Var "cx") (Var "cy")))
                           %: Int 1_000_003);
                      Set ("j", Var "j" +: Int 1);
                    ] );
                Set ("i", Var "i" +: Int 1);
              ] );
          Return (Var "sum");
        ];
      (* DRC: walk the whole grid, checking invariants as it goes. *)
      func "drc" []
        [
          Let ("sum", Int 0);
          Let ("i", Int 0);
          While
            ( Var "i" <: Int (grid_w * grid_h),
              [
                Let ("v", Deref (Int grid_base +: Var "i"));
                Check (Var "v" >=: Int 0);
                Set ("sum", (Var "sum" +: Var "v") %: Int 1_000_003);
                Set ("i", Var "i" +: Int 1);
              ] );
          Return (Var "sum");
        ];
      (* Redraw the layout view: magic re-renders after every command,
         dirtying a large region — the dominant term in its checkpoint
         size (and thus its DC-disk overhead, Figure 8b). *)
      func "render" [ "stamp" ]
        [
          Let ("i", Int 0);
          While
            ( Var "i" <: Int fb_words,
              [
                Set_heap (Int fb_base +: Var "i",
                          (Var "stamp" *: Int 31) +: Var "i");
                Set ("i", Var "i" +: Int 1);
              ] );
        ];
      func "main" []
        [
          Sigaction "on_signal";
          Let ("tok", Int 0);
          Let ("quit", Int 0);
          Let ("t0", Int 0);
          Let ("result", Int 0);
          While
            ( Not (Var "quit"),
              [
                Set ("tok", Input);
                If
                  ( Var "tok" <: Int 0,
                    [ Set ("quit", Int 1) ],
                    [
                      (* the command timer brackets every command *)
                      Set ("t0", Time);
                      Let ("op", Var "tok" /: Int 100_000);
                      Let ("x", (Var "tok" /: Int 100) %: Int 1000);
                      Let ("y", Var "tok" %: Int 100);
                      Set ("result", Int 0);
                      If (Var "op" =: Int 1,
                          [ Expr (Call ("place",
                                        [ Var "x"; Var "y";
                                          Deref (Int h_ncmds) +: Int 1 ])) ],
                          []);
                      If (Var "op" =: Int 2,
                          [ Expr (Call ("route", [ Var "x"; Var "y" ])) ],
                          []);
                      If (Var "op" =: Int 3,
                          [ Expr (Call ("erase", [ Var "x"; Var "y" ])) ],
                          []);
                      If (Var "op" =: Int 4,
                          [ Set ("result",
                                 Call ("query", [ Var "x"; Var "y" ])) ],
                          []);
                      If (Var "op" =: Int 5,
                          [ Set ("result", Call ("drc", [])) ], []);
                      Expr (Call ("render", [ Deref (Int h_ncmds) ]));
                      Set_heap (Int h_timer,
                                Deref (Int h_timer) +: (Time -: Var "t0"));
                      Set_heap (Int h_ncmds, Deref (Int h_ncmds) +: Int 1);
                      Check (Deref (Int h_ncmds) >: Int 0);
                      Output ((Deref (Int h_ncmds) *: Int 1_000)
                              +: (Var "result" %: Int 997));
                    ] );
              ] );
          Output (Deref (Int h_placed));
        ];
    ]
  in
  Ft_vm.Asm.program fns

let input_script p =
  let rng = Random.State.make [| p.seed |] in
  List.init p.commands (fun _ ->
      let op =
        Workload.weighted rng [ (35, 1); (25, 2); (10, 3); (20, 4); (10, 5) ]
      in
      let x = Random.State.int rng grid_w
      and y = Random.State.int rng grid_h in
      (op * 100_000) + (x * 100) + y)

let workload ?(params = default_params) () =
  let code = Ft_vm.Asm.compile program in
  Workload.make ~name:"magic" ~nprocs:1 ~programs:[| code |]
    ~heap_words
    ~configure:(fun k ->
      Ft_os.Kernel.set_input k 0
        (Ft_os.Kernel.scripted_input ~start:0 ~interval_ns:params.interval_ns
           (input_script params));
      Ft_os.Kernel.set_timer_signal k 0 ~period_ns:params.signal_period_ns
        ~first_at:(params.signal_period_ns / 2))
    ()
