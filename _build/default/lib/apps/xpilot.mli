(** xpilot: a distributed real-time game (paper §3, Figure 8c): one
    server and three clients in lock-step 15 fps frames.  Sustainable
    frame rate is the reported metric — commit latency eats the frame
    budget, which is how DC-disk drops below 15 fps. *)

type params = { frames : int; seed : int }

val default_params : params
val small_params : params

val nprocs : int
val heap_words : int
val frame_us : int

val server_program : params -> Ft_vm.Asm.program
val client_program : params -> Ft_vm.Asm.program

val workload : ?params:params -> unit -> Workload.t

val fps : Ft_runtime.Engine.result -> float
(** Rendered frames per simulated second, from the slowest client. *)
