(** TreadMarks: a page-based software DSM with release consistency
    running a Barnes-Hut N-body computation (paper §3, Figure 8d).
    pid 0 is the manager (home of the master copy) and also worker 0;
    page fetches arrive a word per message (copious receive ND);
    dirty-word diffs are shipped at each barrier, after which every
    cached page is invalidated — making the computation deterministic
    regardless of message timing. *)

(** [Direct] is O(N^2) direct summation; [Tree] is the real Barnes-Hut
    algorithm: a quadtree built into DSM shared memory by the manager
    each iteration and traversed by every worker with the theta opening
    criterion. *)
type algorithm = Direct | Tree

type params = {
  bodies : int;
  iters : int;
  seed : int;
  algorithm : algorithm;
}

val default_params : params
val small_params : params

val tree_params : params
(** A Barnes-Hut (quadtree) configuration. *)

val nprocs : int
val heap_words : int
val dsm_page : int

val program : params:params -> pid:int -> Ft_vm.Asm.program

val workload : ?params:params -> unit -> Workload.t
