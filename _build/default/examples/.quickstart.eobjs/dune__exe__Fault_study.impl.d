examples/fault_study.ml: Array Format Ft_apps Ft_core Ft_faults Ft_runtime Lazy List Printf Random
