examples/mitigations.mli:
