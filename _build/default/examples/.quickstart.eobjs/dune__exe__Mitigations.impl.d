examples/mitigations.ml: Ft_harness Ft_os Ft_runtime Ft_vm List Printf
