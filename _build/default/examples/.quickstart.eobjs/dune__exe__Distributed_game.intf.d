examples/distributed_game.mli:
