examples/distributed_game.ml: Array Ft_apps Ft_core Ft_runtime Ft_stablemem List Printf String
