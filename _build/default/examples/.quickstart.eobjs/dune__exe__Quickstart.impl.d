examples/quickstart.ml: Array Format Ft_core Ft_os Ft_runtime Ft_vm List Printf String
