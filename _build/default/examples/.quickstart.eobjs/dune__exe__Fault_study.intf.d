examples/fault_study.mli:
