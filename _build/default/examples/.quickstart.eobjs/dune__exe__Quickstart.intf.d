examples/quickstart.mli:
