examples/editor_recovery.mli:
