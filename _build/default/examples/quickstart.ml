(* Quickstart: write a tiny interactive program in the mini-language, run
   it under Discount Checking with the CPVS protocol, kill it mid-run,
   and watch consistent recovery happen.

     dune exec examples/quickstart.exe
*)

open Ft_vm.Asm

(* A four-function calculator: reads [op*1000 + operand] tokens, keeps an
   accumulator in the heap, echoes the accumulator after each command. *)
let calculator =
  program
    [
      func "apply" [ "op"; "x" ]
        [
          Let ("acc", Deref (Int 0));
          If (Var "op" =: Int 1, [ Set ("acc", Var "acc" +: Var "x") ], []);
          If (Var "op" =: Int 2, [ Set ("acc", Var "acc" -: Var "x") ], []);
          If (Var "op" =: Int 3, [ Set ("acc", Var "acc" *: Var "x") ], []);
          If
            ( (Var "op" =: Int 4) &&: (Var "x" <>: Int 0),
              [ Set ("acc", Var "acc" /: Var "x") ],
              [] );
          Set_heap (Int 0, Var "acc");
        ];
      func "main" []
        [
          Let ("tok", Int 0);
          Let ("quit", Int 0);
          While
            ( Not (Var "quit"),
              [
                Set ("tok", Input);
                If
                  ( Var "tok" <: Int 0,
                    [ Set ("quit", Int 1) ],
                    [
                      Expr (Call ("apply",
                                  [ Var "tok" /: Int 1000;
                                    Var "tok" %: Int 1000 ]));
                      Output (Deref (Int 0));
                    ] );
              ] );
        ];
    ]

let session =
  [ 1007 (* +7 *); 3006 (* *6 *); 2002 (* -2 *); 4005 (* /5 *);
    1090 (* +90 *); 3002 (* *2 *) ]

let run ?(kills = []) () =
  let code = Ft_vm.Asm.compile calculator in
  let kernel = Ft_os.Kernel.create ~nprocs:1 () in
  Ft_os.Kernel.set_input kernel 0
    (Ft_os.Kernel.scripted_input ~start:0 ~interval_ns:50_000_000 session);
  let cfg = { Ft_runtime.Engine.default_config with kills } in
  let _, r = Ft_runtime.Engine.execute ~cfg ~kernel ~programs:[| code |] () in
  r

let show name (r : Ft_runtime.Engine.result) =
  Printf.printf "%-22s visible = [%s]  commits = %d  crashes = %d\n" name
    (String.concat "; "
       (List.map string_of_int r.Ft_runtime.Engine.visible))
    r.Ft_runtime.Engine.commit_counts.(0)
    r.Ft_runtime.Engine.crashes

let () =
  print_endline "== quickstart: failure transparency for a calculator ==\n";
  let reference = run () in
  show "failure-free" reference;

  (* Stop failure at t=120ms: the process dies between keystrokes and is
     rolled back to its last commit; CPVS committed before every echo, so
     the user sees at most a duplicated echo, never a wrong one. *)
  let failed = run ~kills:[ (120_000_000, 0) ] () in
  show "killed at 120ms" failed;

  let verdict =
    Ft_core.Consistency.check
      ~reference:reference.Ft_runtime.Engine.visible
      ~observed:failed.Ft_runtime.Engine.visible
  in
  Format.printf "\nconsistent recovery? %a\n" Ft_core.Consistency.pp_verdict
    verdict;
  Format.printf "Save-work upheld in the failed run? %b\n"
    (Ft_core.Save_work.holds failed.Ft_runtime.Engine.trace)
