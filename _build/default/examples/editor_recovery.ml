(* Editor recovery: run the nvi workload under every Figure-8 protocol,
   inject stop failures, and compare commit counts, overhead and recovered
   output — a miniature of the paper's §3 evaluation.

     dune exec examples/editor_recovery.exe
*)

(* a brisk typist: 20 ms between keystrokes *)
let params =
  { Ft_apps.Nvi.small_params with
    Ft_apps.Nvi.keystrokes = 400; interval_ns = 20_000_000 }

let run ?(protocol = Ft_core.Protocols.cpvs) ?(kills = [])
    ?(medium = Ft_runtime.Checkpointer.Reliable_memory) () =
  let w = Ft_apps.Nvi.workload ~params () in
  let cfg =
    Ft_apps.Workload.engine_config w
      { Ft_runtime.Engine.default_config with protocol; kills; medium }
  in
  let kernel = Ft_apps.Workload.kernel w in
  let _, r = Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs () in
  r

let () =
  print_endline "== editor_recovery: nvi across the protocol space ==\n";
  let reference = run ~protocol:Ft_core.Protocols.no_commit () in
  let base = reference.Ft_runtime.Engine.sim_time_ns in
  Printf.printf "failure-free baseline: %d keystrokes in %.2f s simulated\n\n"
    params.Ft_apps.Nvi.keystrokes
    (float_of_int base /. 1e9);

  Printf.printf "%-12s %12s %10s %12s %10s\n" "protocol" "commits"
    "DC ovh" "disk ovh" "recovered?";
  print_endline (String.make 60 '-');
  List.iter
    (fun proto ->
      let dc = run ~protocol:proto () in
      let disk =
        run ~protocol:proto
          ~medium:(Ft_runtime.Checkpointer.Disk Ft_stablemem.Disk.default) ()
      in
      (* two stop failures mid-session *)
      let crashed =
        run ~protocol:proto ~kills:[ (15_000_000, 0); (31_000_000, 0) ] ()
      in
      let ovh t =
        100. *. (float_of_int t -. float_of_int base) /. float_of_int base
      in
      let ok =
        crashed.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed
        && Ft_core.Consistency.is_consistent
             ~reference:reference.Ft_runtime.Engine.visible
             ~observed:crashed.Ft_runtime.Engine.visible
      in
      Printf.printf "%-12s %12d %9.1f%% %11.1f%% %10b\n"
        proto.Ft_core.Protocol.spec_name
        dc.Ft_runtime.Engine.commit_counts.(0)
        (ovh dc.Ft_runtime.Engine.sim_time_ns)
        (ovh disk.Ft_runtime.Engine.sim_time_ns)
        ok)
    Ft_core.Protocols.
      [ cand; cand_log; cpvs; cbndvs; cbndvs_log; commit_all ];
  print_endline
    "\nEvery Save-work protocol recovers the session consistently; they\n\
     differ only in how many commits (and how much time) that costs."
