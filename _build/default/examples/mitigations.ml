(* Mitigations: the paper's §2.6 advice for living with the Lose-work
   invariant, demonstrated end to end.

     dune exec examples/mitigations.exe

   Three scenes:
   1. "expand resources after a failure": a program that dies on a full
      disk crash-loops under plain recovery, but completes when the
      reboot grows the disk (the fixed ND result became transient);
   2. "commit less state": excluding magic's re-rendered framebuffer
      from checkpoints cuts DC-disk overhead with no loss of output;
   3. "crash early": the tighter nvi checks its buffer, the fewer heap
      corruptions survive a commit. *)

open Ft_vm.Asm

(* --- scene 1: resource expansion ----------------------------------------- *)

let disk_hog =
  program
    [
      func "main" []
        [
          Let ("fd", Open_file (Int 1));
          Let ("i", Int 0);
          While
            ( Var "i" <: Int 30,
              [
                Let ("ok", Write_file (Var "fd", Var "i" *: Var "i"));
                Check (Var "ok" >: Int 0);
                Output (Var "i");
                Set ("i", Var "i" +: Int 1);
              ] );
          Close_file (Var "fd");
        ];
    ]

let scene1 () =
  print_endline "--- scene 1: expand resources after a failure (2.6) ---";
  let run ~expand =
    let kernel = Ft_os.Kernel.create ~fs_capacity:18 ~nprocs:1 () in
    let cfg =
      { Ft_runtime.Engine.default_config with
        expand_resources_on_recovery = expand;
        max_recovery_attempts = 2;
        max_instructions = 10_000_000 }
    in
    let _, r =
      Ft_runtime.Engine.execute ~cfg ~kernel
        ~programs:[| Ft_vm.Asm.compile disk_hog |] ()
    in
    r
  in
  let stuck = run ~expand:false and saved = run ~expand:true in
  Printf.printf
    "  plain recovery      : %s after %d crashes (the disk is still full)\n"
    (match stuck.Ft_runtime.Engine.outcome with
    | Ft_runtime.Engine.Recovery_failed -> "gave up"
    | _ -> "unexpected")
    stuck.Ft_runtime.Engine.crashes;
  Printf.printf
    "  reboot grows disk   : %s, %d records written\n\n"
    (match saved.Ft_runtime.Engine.outcome with
    | Ft_runtime.Engine.Completed -> "completed"
    | _ -> "unexpected")
    (List.length saved.Ft_runtime.Engine.visible)

(* --- scene 2: commit less state ------------------------------------------- *)

let scene2 () =
  print_endline "--- scene 2: exclude recomputable state from commits (2.6) ---";
  List.iter
    (fun r ->
      Printf.printf "  %-22s DC-disk overhead %s\n"
        r.Ft_harness.Ablation.label
        (Ft_harness.Report.pct1 r.Ft_harness.Ablation.overhead_pct))
    (Ft_harness.Ablation.exclusion ~commands:30 ());
  print_newline ()

(* --- scene 3: crash early -------------------------------------------------- *)

let scene3 () =
  print_endline "--- scene 3: crash early to shorten dangerous paths (2.6) ---";
  List.iter
    (fun r ->
      Printf.printf "  integrity scan %-22s Lose-work violations %s\n"
        (if r.Ft_harness.Ablation.check_every >= 1_000_000 then "never"
         else
           Printf.sprintf "every %d keystrokes"
             r.Ft_harness.Ablation.check_every)
        (Ft_harness.Report.pct r.Ft_harness.Ablation.violation_pct))
    (Ft_harness.Ablation.crash_early ~cadences:[ 1; 1_000_000 ]
       ~target_crashes:15 ())

let () =
  print_endline "== mitigations: living with the Lose-work invariant ==\n";
  scene1 ();
  scene2 ();
  scene3 ()
