(* Fault study: inject one application fault of each type into postgres,
   watch where the dangerous path falls, and check the Lose-work verdict
   against end-to-end recovery — the paper's §4.1 methodology on a single
   run per fault type, narrated.

     dune exec examples/fault_study.exe
*)

let run_with_fault ft ~seed =
  let w = Ft_apps.Postgres.workload ~params:Ft_apps.Postgres.small_params () in
  let cfg =
    Ft_apps.Workload.engine_config w
      { Ft_runtime.Engine.default_config with
        protocol = Ft_core.Protocols.cpvs;
        suppress_faults_on_recovery = true;
        max_recovery_attempts = 2;
        max_instructions = 100_000_000 }
  in
  let kernel = Ft_apps.Workload.kernel w in
  let engine = Ft_runtime.Engine.create ~cfg ~kernel ~programs:w.programs () in
  let rng = Random.State.make [| seed |] in
  match
    Ft_faults.App_injector.plan rng ft ~code:w.programs.(0)
      ~horizon:2_000_000
  with
  | None -> None
  | Some plan ->
      Ft_faults.App_injector.arm engine ~pid:0 plan;
      let r = Ft_runtime.Engine.run engine in
      Some (plan, r)

let reference =
  lazy
    (let w =
       Ft_apps.Postgres.workload ~params:Ft_apps.Postgres.small_params ()
     in
     let cfg =
       Ft_apps.Workload.engine_config w Ft_runtime.Engine.default_config
     in
     let kernel = Ft_apps.Workload.kernel w in
     let _, r =
       Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs ()
     in
     r.Ft_runtime.Engine.visible)

let study ft =
  Printf.printf "\n--- %s ---\n" (Ft_faults.Fault_type.to_string ft);
  (* hunt for a seed that crashes *)
  let rec hunt seed =
    if seed > 600 then print_endline "  (no crashing run found in budget)"
    else
      match run_with_fault ft ~seed with
      | Some (plan, r) when r.Ft_runtime.Engine.first_crash <> None ->
          Format.printf "  injected: %a@." Ft_faults.App_injector.pp_plan
            plan;
          (match (r.Ft_runtime.Engine.activation,
                  r.Ft_runtime.Engine.first_crash) with
          | Some (_, a), Some (_, c) ->
              Printf.printf
                "  activation at event %d, crash at event %d (latency %d \
                 events)\n" a c (c - a)
          | _ -> ());
          let violated = r.Ft_runtime.Engine.commit_after_activation in
          Printf.printf "  commit on the dangerous path (Lose-work violated)? %b\n"
            violated;
          let recovered =
            r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed
            && Ft_core.Consistency.is_consistent
                 ~reference:(Lazy.force reference)
                 ~observed:r.Ft_runtime.Engine.visible
          in
          Printf.printf
            "  end-to-end recovery (fault suppressed on replay): %s\n"
            (if recovered then "SUCCEEDED" else "FAILED");
          Printf.printf "  theorem check: recovery %s iff no violation -> %s\n"
            (if recovered then "succeeded" else "failed")
            (if recovered = not violated then "consistent with Lose-work"
             else "anomaly (commit captured no corrupt state)")
      | _ -> hunt (seed + 1)
  in
  hunt 17

let () =
  print_endline "== fault_study: application faults vs the Lose-work invariant ==";
  print_endline
    "(postgres under Discount Checking + CPVS; one crashing run per type)";
  List.iter study Ft_faults.Fault_type.all
