(* Distributed game: the four-process xpilot workload with a crashing
   client, showing orphan avoidance in a distributed computation — and
   why two-phase commit is the exception that *increases* xpilot's commit
   rate (paper §3).

     dune exec examples/distributed_game.exe
*)

let params = { Ft_apps.Xpilot.small_params with Ft_apps.Xpilot.frames = 60 }

let run ?(protocol = Ft_core.Protocols.cpvs) ?(kills = [])
    ?(medium = Ft_runtime.Checkpointer.Reliable_memory) () =
  let w = Ft_apps.Xpilot.workload ~params () in
  let cfg =
    Ft_apps.Workload.engine_config w
      { Ft_runtime.Engine.default_config with protocol; kills; medium }
  in
  let kernel = Ft_apps.Workload.kernel w in
  let _, r = Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs () in
  r

let () =
  print_endline "== distributed_game: 4-process xpilot ==\n";
  Printf.printf "%-12s %18s %10s %12s %8s\n" "protocol" "commits s/c1/c2/c3"
    "DC fps" "disk fps" "crash ok";
  print_endline (String.make 66 '-');
  List.iter
    (fun proto ->
      let dc = run ~protocol:proto () in
      let disk =
        run ~protocol:proto
          ~medium:(Ft_runtime.Checkpointer.Disk Ft_stablemem.Disk.default) ()
      in
      (* kill client 2 mid-game: the server must not become an orphan *)
      let crashed = run ~protocol:proto ~kills:[ (1_500_000_000, 2) ] () in
      let c = dc.Ft_runtime.Engine.commit_counts in
      Printf.printf "%-12s %5d/%3d/%3d/%3d %10.1f %12.1f %8b\n"
        proto.Ft_core.Protocol.spec_name c.(0) c.(1) c.(2) c.(3)
        (Ft_apps.Xpilot.fps dc) (Ft_apps.Xpilot.fps disk)
        (crashed.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
      ())
    Ft_core.Protocols.[ cand; cpvs; cbndvs; cpv_2pc; cbndv_2pc ];
  print_endline
    "\nNote the 2PC rows: committing every process at each visible event\n\
     raises the total commit count for xpilot — the one application where\n\
     coordinated commit loses to pessimistic commit-before-send, exactly\n\
     as the paper observes.";

  (* Orphans: run the same game with a protocol that upholds nothing.  If
     a client crashes after the server committed a dependence on its lost
     joystick input, the server is an orphan. *)
  let broken =
    run ~protocol:Ft_core.Protocols.no_commit
      ~kills:[ (1_500_000_000, 2) ] ()
  in
  Printf.printf
    "\nwithout Save-work: outcome %s (crashed client stalls the game)\n"
    (match broken.Ft_runtime.Engine.outcome with
    | Ft_runtime.Engine.Completed -> "completed (lucky timing)"
    | Ft_runtime.Engine.Deadlocked -> "deadlocked"
    | Ft_runtime.Engine.Recovery_failed -> "recovery failed"
    | Ft_runtime.Engine.Deadline -> "deadline"
    | Ft_runtime.Engine.Instruction_budget -> "instruction budget"
    | Ft_runtime.Engine.Net_unreachable -> "network unreachable")
